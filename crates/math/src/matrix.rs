//! Dense integer and rational matrices.
//!
//! These back the `2d+1` scheduling matrices, access functions and the
//! unimodular transformation algebra of the compiler. The dimensions in
//! play are tiny (a handful of loop iterators), so a straightforward dense
//! row-major representation with exact rational Gaussian elimination is the
//! right tool.

use crate::ratio::Ratio;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `i64` matrix.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> IntMat {
        IntMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n`×`n` identity.
    pub fn identity(n: usize) -> IntMat {
        let mut m = IntMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices; all rows must share one length.
    pub fn from_rows(rows: &[Vec<i64>]) -> IntMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in IntMat::from_rows");
            data.extend_from_slice(row);
        }
        IntMat { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [i64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends a row. Panics if the width differs.
    pub fn push_row(&mut self, row: &[i64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &IntMat) -> IntMat {
        assert_eq!(self.cols, rhs.rows, "IntMat::mul shape mismatch");
        let mut out = IntMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(self.cols, v.len(), "IntMat::mul_vec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> IntMat {
        let mut out = IntMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Converts to a rational matrix.
    pub fn to_rat(&self) -> RatMat {
        RatMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| Ratio::int(x)).collect(),
        }
    }

    /// Rank over the rationals.
    pub fn rank(&self) -> usize {
        self.to_rat().rank()
    }

    /// Determinant (square matrices only), computed exactly.
    pub fn det(&self) -> i64 {
        let d = self.to_rat().det();
        d.to_int()
    }

    /// True iff the matrix is square with determinant ±1.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && self.rows > 0 && self.det().abs() == 1
    }

    /// True iff the matrix is square and a *signed permutation*: exactly one
    /// nonzero entry per row and per column, each ±1. This is the schedule
    /// class the paper restricts its polyhedral stage to (Sec. III-A).
    pub fn is_signed_permutation(&self) -> bool {
        if self.rows != self.cols || self.rows == 0 {
            return false;
        }
        let mut col_seen = vec![false; self.cols];
        for i in 0..self.rows {
            let mut hits = 0;
            for j in 0..self.cols {
                match self[(i, j)] {
                    0 => {}
                    1 | -1 => {
                        if col_seen[j] {
                            return false;
                        }
                        col_seen[j] = true;
                        hits += 1;
                    }
                    _ => return false,
                }
            }
            if hits != 1 {
                return false;
            }
        }
        true
    }

    /// Exact inverse, panicking unless the matrix is square, invertible and
    /// has an *integer* inverse (e.g. unimodular). For general invertible
    /// matrices use [`IntMat::to_rat`] and [`RatMat::inverse`].
    pub fn inverse_unimodular(&self) -> IntMat {
        let inv = self
            .to_rat()
            .inverse()
            .expect("inverse_unimodular on a singular matrix");
        let mut out = IntMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = inv[(i, j)].to_int();
            }
        }
        out
    }
}

impl Index<(usize, usize)> for IntMat {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "IntMat index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for IntMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "IntMat index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for IntMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Ratio>,
}

impl RatMat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> RatMat {
        RatMat {
            rows,
            cols,
            data: vec![Ratio::ZERO; rows * cols],
        }
    }

    /// The `n`×`n` identity.
    pub fn identity(n: usize) -> RatMat {
        let mut m = RatMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Ratio::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rank by exact Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            // Find pivot.
            let Some(p) = (rank..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(rank, p);
            let pivot = m[(rank, col)];
            for r in 0..m.rows {
                if r != rank && !m[(r, col)].is_zero() {
                    let f = m[(r, col)] / pivot;
                    for c in col..m.cols {
                        let sub = m[(rank, c)] * f;
                        m[(r, c)] = m[(r, c)] - sub;
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Determinant of a square matrix, exactly.
    pub fn det(&self) -> Ratio {
        assert_eq!(self.rows, self.cols, "det of non-square matrix");
        let mut m = self.clone();
        let mut det = Ratio::ONE;
        for col in 0..m.cols {
            let Some(p) = (col..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                return Ratio::ZERO;
            };
            if p != col {
                m.swap_rows(col, p);
                det = -det;
            }
            let pivot = m[(col, col)];
            det = det * pivot;
            for r in col + 1..m.rows {
                if !m[(r, col)].is_zero() {
                    let f = m[(r, col)] / pivot;
                    for c in col..m.cols {
                        let sub = m[(col, c)] * f;
                        m[(r, c)] = m[(r, c)] - sub;
                    }
                }
            }
        }
        det
    }

    /// Exact inverse by Gauss–Jordan; `None` if singular.
    pub fn inverse(&self) -> Option<RatMat> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut inv = RatMat::identity(n);
        for col in 0..n {
            let p = (col..n).find(|&r| !m[(r, col)].is_zero())?;
            m.swap_rows(col, p);
            inv.swap_rows(col, p);
            let pivot = m[(col, col)];
            for c in 0..n {
                m[(col, c)] = m[(col, c)] / pivot;
                inv[(col, c)] = inv[(col, c)] / pivot;
            }
            for r in 0..n {
                if r != col && !m[(r, col)].is_zero() {
                    let f = m[(r, col)];
                    for c in 0..n {
                        let s1 = m[(col, c)] * f;
                        m[(r, c)] = m[(r, c)] - s1;
                        let s2 = inv[(col, c)] * f;
                        inv[(r, c)] = inv[(r, c)] - s2;
                    }
                }
            }
        }
        Some(inv)
    }

    /// Solves `self · x = b` exactly; `None` if the system is singular or
    /// inconsistent. Requires a square matrix.
    pub fn solve(&self, b: &[Ratio]) -> Option<Vec<Ratio>> {
        let inv = self.inverse()?;
        assert_eq!(b.len(), self.rows);
        Some(
            (0..inv.rows)
                .map(|i| {
                    (0..inv.cols)
                        .map(|j| inv[(i, j)] * b[j])
                        .fold(Ratio::ZERO, |a, x| a + x)
                })
                .collect(),
        )
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for RatMat {
    type Output = Ratio;
    fn index(&self, (r, c): (usize, usize)) -> &Ratio {
        assert!(r < self.rows && c < self.cols, "RatMat index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RatMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Ratio {
        assert!(r < self.rows && c < self.cols, "RatMat index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|j| self[(i, j)].to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_mul() {
        let a = IntMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        let i = IntMat::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
        let b = IntMat::from_rows(&[vec![0, 1], vec![1, 0]]);
        assert_eq!(
            a.mul(&b),
            IntMat::from_rows(&[vec![2, 1], vec![4, 3]])
        );
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = IntMat::from_rows(&[vec![1, 2, 3], vec![0, -1, 4]]);
        assert_eq!(a.mul_vec(&[1, 1, 1]), vec![6, 3]);
    }

    #[test]
    fn det_and_unimodularity() {
        let skew = IntMat::from_rows(&[vec![1, 0], vec![1, 1]]);
        assert_eq!(skew.det(), 1);
        assert!(skew.is_unimodular());
        let scale = IntMat::from_rows(&[vec![2, 0], vec![0, 1]]);
        assert_eq!(scale.det(), 2);
        assert!(!scale.is_unimodular());
        let singular = IntMat::from_rows(&[vec![1, 2], vec![2, 4]]);
        assert_eq!(singular.det(), 0);
    }

    #[test]
    fn signed_permutation_detection() {
        let p = IntMat::from_rows(&[vec![0, 1, 0], vec![-1, 0, 0], vec![0, 0, 1]]);
        assert!(p.is_signed_permutation());
        let skew = IntMat::from_rows(&[vec![1, 0], vec![1, 1]]);
        assert!(!skew.is_signed_permutation());
        let double = IntMat::from_rows(&[vec![2, 0], vec![0, 1]]);
        assert!(!double.is_signed_permutation());
    }

    #[test]
    fn unimodular_inverse_roundtrip() {
        let skew = IntMat::from_rows(&[vec![1, 0, 0], vec![1, 1, 0], vec![0, 2, 1]]);
        let inv = skew.inverse_unimodular();
        assert_eq!(skew.mul(&inv), IntMat::identity(3));
        assert_eq!(inv.mul(&skew), IntMat::identity(3));
    }

    #[test]
    fn rational_inverse_and_solve() {
        let m = IntMat::from_rows(&[vec![2, 1], vec![1, 1]]).to_rat();
        let inv = m.inverse().unwrap();
        let b = vec![Ratio::int(3), Ratio::int(2)];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, vec![Ratio::int(1), Ratio::int(1)]);
        // inv * m == I
        let mut prod = RatMat::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    let t = inv[(i, k)] * m[(k, j)];
                    prod[(i, j)] = prod[(i, j)] + t;
                }
            }
        }
        assert_eq!(prod, RatMat::identity(2));
    }

    #[test]
    fn singular_inverse_is_none() {
        let m = IntMat::from_rows(&[vec![1, 2], vec![2, 4]]).to_rat();
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rank_of_rectangular() {
        let m = IntMat::from_rows(&[vec![1, 2, 3], vec![2, 4, 6], vec![0, 1, 1]]);
        assert_eq!(m.rank(), 2);
        assert_eq!(IntMat::zeros(3, 4).rank(), 0);
        assert_eq!(IntMat::identity(4).rank(), 4);
    }
}
