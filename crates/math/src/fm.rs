//! Fourier–Motzkin elimination over affine constraint rows.
//!
//! Eliminating a dimension `d` from a constraint system proceeds in two
//! phases:
//!
//! 1. **Exact equality substitution** — if some equality mentions `d`, it is
//!    used to substitute `d` out of every other constraint. This step is
//!    exact over the integers.
//! 2. **Inequality combination** — every (lower, upper) pair
//!    `a·x_d + f >= 0` (a > 0) and `-b·x_d + g >= 0` (b > 0) is combined
//!    into `b·f + a·g >= 0`. When `a == 1` or `b == 1` this is the *exact
//!    shadow*; otherwise it is the rational (real) shadow, which is sound
//!    but may over-approximate the integer projection. All sets produced by
//!    this workspace have unit coefficients on the eliminated dimensions,
//!    so the elimination is exact in practice.

use crate::poly::{CmpOp, Constraint};

/// Eliminates dimension `d` from the system, returning rows that no longer
/// mention it. The dimension count (row width) is preserved.
pub fn eliminate_dim(constraints: &[Constraint], d: usize) -> Vec<Constraint> {
    // Phase 1: equality substitution. Among the equalities mentioning
    // `d`, prefer the one with the smallest |coefficient| — a unit
    // coefficient makes the substitution exact over the integers.
    if let Some(eq_idx) = constraints
        .iter()
        .enumerate()
        .filter(|(_, c)| c.op == CmpOp::Eq && c.mentions(d))
        .min_by_key(|(_, c)| c.coeff(d).abs())
        .map(|(i, _)| i)
    {
        let eq = &constraints[eq_idx];
        let a = eq.coeff(d); // a * x_d + f == 0
        let mut out = Vec::with_capacity(constraints.len() - 1);
        for (i, c) in constraints.iter().enumerate() {
            if i == eq_idx {
                continue;
            }
            let b = c.coeff(d);
            if b == 0 {
                out.push(c.clone());
                continue;
            }
            // c: b * x_d + g OP 0. Multiply by |a| (positive: preserves OP)
            // then replace b*|a|*x_d = -sgn(a)*b*f.
            let s = a.signum();
            let row: Vec<i64> = c
                .row
                .iter()
                .zip(&eq.row)
                .enumerate()
                .map(|(k, (&ck, &ek))| {
                    if k == d {
                        0
                    } else {
                        a.abs() * ck - s * b * ek
                    }
                })
                .collect();
            out.push(Constraint { row, op: c.op });
        }
        return out;
    }

    // Phase 2: inequality combination.
    let mut lowers = Vec::new(); // coeff > 0
    let mut uppers = Vec::new(); // coeff < 0
    let mut keep = Vec::new();
    for c in constraints {
        debug_assert!(c.op == CmpOp::Ge || !c.mentions(d));
        let a = c.coeff(d);
        if a > 0 {
            lowers.push(c);
        } else if a < 0 {
            uppers.push(c);
        } else {
            keep.push(c.clone());
        }
    }
    for lo in &lowers {
        let a = lo.coeff(d);
        for up in &uppers {
            let b = -up.coeff(d);
            // b*lo + a*up : coefficient on d becomes b*a - a*b = 0.
            let row: Vec<i64> = lo
                .row
                .iter()
                .zip(&up.row)
                .map(|(&l, &u)| b * l + a * u)
                .collect();
            keep.push(Constraint::ge(row));
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Polyhedron;

    #[test]
    fn eliminate_with_equality_is_exact() {
        // { x = 2y, 0 <= x <= 10 } project out x -> 0 <= 2y <= 10.
        let cs = vec![
            Constraint::eq(vec![1, -2, 0]),
            Constraint::ge(vec![1, 0, 0]),
            Constraint::ge(vec![-1, 0, 10]),
        ];
        let rows = eliminate_dim(&cs, 0);
        let mut p = Polyhedron::universe(2);
        for r in rows {
            p.add(r);
        }
        assert!(p.contains(&[99, 0]));
        assert!(p.contains(&[99, 5]));
        assert!(!p.contains(&[99, 6]));
        assert!(!p.contains(&[99, -1]));
    }

    #[test]
    fn eliminate_negative_coefficient_equality() {
        // { -x + y + 1 == 0 (x = y+1), x <= 5 } -> y <= 4.
        let cs = vec![
            Constraint::eq(vec![-1, 1, 1]),
            Constraint::ge(vec![-1, 0, 5]),
        ];
        let rows = eliminate_dim(&cs, 0);
        let mut p = Polyhedron::universe(2);
        for r in rows {
            p.add(r);
        }
        assert!(p.contains(&[0, 4]));
        assert!(!p.contains(&[0, 5]));
    }

    #[test]
    fn inequality_combination_projects_band() {
        // { 0 <= x, x <= y, y <= 3 } eliminate x -> { 0 <= y <= 3 }.
        let cs = vec![
            Constraint::ge(vec![1, 0, 0]),
            Constraint::ge(vec![-1, 1, 0]),
            Constraint::ge(vec![0, -1, 3]),
        ];
        let rows = eliminate_dim(&cs, 0);
        let mut p = Polyhedron::universe(2);
        for r in rows {
            p.add(r);
        }
        assert!(p.contains(&[42, 0]));
        assert!(p.contains(&[42, 3]));
        assert!(!p.contains(&[42, -1]));
    }

    #[test]
    fn elimination_preserves_row_width() {
        let cs = vec![Constraint::ge(vec![1, 1, 1, 0])];
        let rows = eliminate_dim(&cs, 1);
        assert!(rows.is_empty()); // only a lower bound: drops away
        let cs = vec![
            Constraint::ge(vec![0, 1, 0, 0]),
            Constraint::ge(vec![1, -1, 0, 5]),
        ];
        let rows = eliminate_dim(&cs, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row.len(), 4);
    }
}
