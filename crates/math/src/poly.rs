//! Affine constraints and integer polyhedra.
//!
//! A [`Polyhedron`] is a conjunction of affine constraints over an ordered
//! list of `n_dims` dimensions. The meaning of each dimension (loop
//! iterator, structure parameter like `NI`, schedule time dimension, …) is
//! assigned by the caller; this module only knows the column layout
//! `[x_0, …, x_{n-1}, 1]` — every constraint row carries `n_dims`
//! coefficients followed by one constant term.

use crate::fm;
use crate::gcd::{normalize_eq_row, normalize_row};
use std::fmt;

/// Constraint comparison operator, interpreted as `coeffs · x + c OP 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `coeffs · x + c >= 0`
    Ge,
    /// `coeffs · x + c == 0`
    Eq,
}

/// A single affine constraint `coeffs[..n] · x + coeffs[n] OP 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// `n_dims` coefficients followed by the constant term.
    pub row: Vec<i64>,
    /// Comparison against zero.
    pub op: CmpOp,
}

impl Constraint {
    /// Inequality `row · [x, 1] >= 0`.
    pub fn ge(row: Vec<i64>) -> Constraint {
        Constraint { row, op: CmpOp::Ge }
    }

    /// Equality `row · [x, 1] == 0`.
    pub fn eq(row: Vec<i64>) -> Constraint {
        Constraint { row, op: CmpOp::Eq }
    }

    /// Coefficient of dimension `d`.
    pub fn coeff(&self, d: usize) -> i64 {
        self.row[d]
    }

    /// The constant term.
    pub fn constant(&self) -> i64 {
        *self.row.last().expect("empty constraint row")
    }

    /// Number of dimensions the constraint spans.
    pub fn n_dims(&self) -> usize {
        self.row.len() - 1
    }

    /// Evaluates `coeffs · point + c`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.n_dims(), "point arity mismatch");
        self.row[..self.n_dims()]
            .iter()
            .zip(point)
            .map(|(a, x)| a * x)
            .sum::<i64>()
            + self.constant()
    }

    /// True iff `point` satisfies the constraint.
    pub fn holds(&self, point: &[i64]) -> bool {
        let v = self.eval(point);
        match self.op {
            CmpOp::Ge => v >= 0,
            CmpOp::Eq => v == 0,
        }
    }

    /// True when the constraint mentions dimension `d`.
    pub fn mentions(&self, d: usize) -> bool {
        self.row[d] != 0
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.n_dims();
        let mut first = true;
        for (d, &a) in self.row[..n].iter().enumerate() {
            if a == 0 {
                continue;
            }
            if first {
                if a == 1 {
                    write!(f, "x{d}")?;
                } else if a == -1 {
                    write!(f, "-x{d}")?;
                } else {
                    write!(f, "{a}*x{d}")?;
                }
                first = false;
            } else if a > 0 {
                if a == 1 {
                    write!(f, " + x{d}")?;
                } else {
                    write!(f, " + {a}*x{d}")?;
                }
            } else if a == -1 {
                write!(f, " - x{d}")?;
            } else {
                write!(f, " - {}*x{d}", -a)?;
            }
        }
        let c = self.constant();
        if first {
            write!(f, "{c}")?;
        } else if c > 0 {
            write!(f, " + {c}")?;
        } else if c < 0 {
            write!(f, " - {}", -c)?;
        }
        match self.op {
            CmpOp::Ge => write!(f, " >= 0"),
            CmpOp::Eq => write!(f, " == 0"),
        }
    }
}

/// An affine expression `(coeffs · x + c) / denom` with `denom > 0`,
/// used to report loop bounds extracted from a polyhedron. The division is
/// to be interpreted as ceiling for lower bounds and floor for upper bounds.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// `n_dims` coefficients followed by the constant term.
    pub row: Vec<i64>,
    /// Positive divisor.
    pub denom: i64,
}

impl AffineExpr {
    /// Builds an expression with unit denominator.
    pub fn new(row: Vec<i64>) -> AffineExpr {
        AffineExpr { row, denom: 1 }
    }

    /// Evaluates with floor division.
    pub fn eval_floor(&self, point: &[i64]) -> i64 {
        self.raw_eval(point).div_euclid(self.denom)
    }

    /// Evaluates with ceiling division.
    pub fn eval_ceil(&self, point: &[i64]) -> i64 {
        -((-self.raw_eval(point)).div_euclid(self.denom))
    }

    fn raw_eval(&self, point: &[i64]) -> i64 {
        let n = self.row.len() - 1;
        assert_eq!(point.len(), n, "point arity mismatch");
        self.row[..n]
            .iter()
            .zip(point)
            .map(|(a, x)| a * x)
            .sum::<i64>()
            + self.row[n]
    }

    /// True when the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        let n = self.row.len() - 1;
        self.row[..n].iter().all(|&a| a == 0)
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fake = Constraint::ge(self.row.clone());
        let body = format!("{fake:?}");
        let body = body.trim_end_matches(" >= 0");
        if self.denom == 1 {
            write!(f, "{body}")
        } else {
            write!(f, "({body})/{}", self.denom)
        }
    }
}

/// A (possibly unbounded) convex integer polyhedron: the conjunction of a
/// set of affine constraints over `n_dims` dimensions.
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    n_dims: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe polyhedron over `n_dims` dimensions.
    pub fn universe(n_dims: usize) -> Polyhedron {
        Polyhedron {
            n_dims,
            constraints: Vec::new(),
        }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Borrows the constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one constraint (with normalization / gcd tightening).
    pub fn add(&mut self, mut c: Constraint) {
        assert_eq!(c.n_dims(), self.n_dims, "constraint arity mismatch");
        match c.op {
            CmpOp::Ge => {
                normalize_row(&mut c.row);
            }
            CmpOp::Eq => {
                if !normalize_eq_row(&mut c.row) {
                    // Integrally infeasible equality: record an explicitly
                    // false constraint so emptiness tests succeed fast.
                    self.constraints.push(Constraint::ge(
                        std::iter::repeat(0)
                            .take(self.n_dims)
                            .chain(std::iter::once(-1))
                            .collect(),
                    ));
                    return;
                }
            }
        }
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// Adds `x_d >= lo` and `x_d <= hi - 1`, i.e. the half-open interval
    /// `lo <= x_d < hi` with constant bounds. Convenience for tests.
    pub fn bound_const(&mut self, d: usize, lo: i64, hi: i64) {
        let mut low = vec![0; self.n_dims + 1];
        low[d] = 1;
        low[self.n_dims] = -lo;
        self.add(Constraint::ge(low));
        let mut up = vec![0; self.n_dims + 1];
        up[d] = -1;
        up[self.n_dims] = hi - 1;
        self.add(Constraint::ge(up));
    }

    /// Intersection of two polyhedra over the same space.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.n_dims, other.n_dims, "space mismatch in intersect");
        let mut out = self.clone();
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// True iff the integer point satisfies every constraint.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(point))
    }

    /// Eliminates dimension `d` by exact equality substitution where
    /// possible and Fourier–Motzkin combination otherwise. The resulting
    /// polyhedron still has `n_dims` dimensions but no constraint mentions
    /// `d` (its projection along `d`).
    pub fn eliminate(&self, d: usize) -> Polyhedron {
        assert!(d < self.n_dims, "eliminate: dimension out of range");
        let rows = fm::eliminate_dim(&self.constraints, d);
        let mut out = Polyhedron::universe(self.n_dims);
        for c in rows {
            out.add(c);
        }
        out
    }

    /// Projects onto the first `k` dimensions by eliminating all others
    /// (dimension count is preserved; eliminated columns become zero).
    /// Dimensions at or beyond `keep_from` (e.g. parameters placed at the
    /// tail of the space) can be retained by passing their start index.
    pub fn project_keep(&self, k: usize, keep_from: usize) -> Polyhedron {
        let mut p = self.clone();
        for d in (k..keep_from).rev() {
            p = p.eliminate(d);
        }
        p
    }

    /// Rational (hence integer-conservative) emptiness test: eliminates
    /// every dimension and checks whether a contradictory constant
    /// constraint remains. Thanks to gcd tightening and exact equality
    /// substitution, the test is exact whenever every elimination step has
    /// a unit coefficient on one side — true for all sets built from
    /// PolyBench-style programs.
    pub fn is_empty(&self) -> bool {
        // Fast path: an explicitly false constraint.
        if self.has_false_constant() {
            return true;
        }
        let mut p = self.clone();
        for d in 0..self.n_dims {
            p = p.eliminate(d);
            if p.has_false_constant() {
                return true;
            }
        }
        p.has_false_constant()
    }

    fn has_false_constant(&self) -> bool {
        self.constraints.iter().any(|c| {
            let n = c.n_dims();
            c.row[..n].iter().all(|&a| a == 0)
                && match c.op {
                    CmpOp::Ge => c.constant() < 0,
                    CmpOp::Eq => c.constant() != 0,
                }
        })
    }

    /// Substitutes the fixed integer `value` for dimension `d`; the
    /// dimension remains in the space but is pinned by an equality.
    pub fn fix(&self, d: usize, value: i64) -> Polyhedron {
        let mut out = self.clone();
        let mut row = vec![0; self.n_dims + 1];
        row[d] = 1;
        row[self.n_dims] = -value;
        out.add(Constraint::eq(row));
        out
    }

    /// Lower and upper bound expressions for dimension `d`, read off the
    /// constraints that mention `d`.
    ///
    /// Every returned lower bound is to be combined with `max` and ceiling
    /// division; upper bounds with `min` and floor division. The caller is
    /// responsible for having eliminated any *inner* dimensions first (the
    /// usual code-generation discipline): constraints mentioning dimensions
    /// other than `d` below `inner_from` are rejected with a panic.
    pub fn bounds(&self, d: usize, inner_from: usize) -> DimBounds {
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for c in &self.constraints {
            let a = c.coeff(d);
            if a == 0 {
                continue;
            }
            for inner in d + 1..inner_from {
                assert!(
                    !c.mentions(inner),
                    "bounds({d}): constraint still mentions inner dim {inner}: {c:?}"
                );
            }
            // a * x_d + rest OP 0.
            let mut rest = c.row.clone();
            rest[d] = 0;
            match c.op {
                CmpOp::Ge if a > 0 => {
                    // x_d >= ceil(-rest / a)
                    let neg: Vec<i64> = rest.iter().map(|&v| -v).collect();
                    lower.push(AffineExpr { row: neg, denom: a });
                }
                CmpOp::Ge => {
                    // (-a) * x_d <= rest  =>  x_d <= floor(rest / -a)
                    upper.push(AffineExpr {
                        row: rest,
                        denom: -a,
                    });
                }
                CmpOp::Eq => {
                    let neg: Vec<i64> = rest.iter().map(|&v| -v).collect();
                    if a > 0 {
                        lower.push(AffineExpr {
                            row: neg.clone(),
                            denom: a,
                        });
                        upper.push(AffineExpr { row: neg, denom: a });
                    } else {
                        lower.push(AffineExpr {
                            row: rest.clone(),
                            denom: -a,
                        });
                        upper.push(AffineExpr {
                            row: rest,
                            denom: -a,
                        });
                    }
                }
            }
        }
        DimBounds { lower, upper }
    }

    /// Removes redundant constraints: an inequality is dropped when the
    /// polyhedron minus it still implies it (checked by emptiness of the
    /// system with the constraint negated). Equalities are kept as-is.
    /// The result describes the same integer set with (usually) fewer
    /// rows — worthwhile before extracting loop bounds, where every
    /// surviving row becomes a `max`/`min` term in generated code.
    pub fn simplify(&self) -> Polyhedron {
        let mut kept: Vec<Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.op == CmpOp::Eq)
            .cloned()
            .collect();
        let ineqs: Vec<Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.op == CmpOp::Ge)
            .cloned()
            .collect();
        for (i, c) in ineqs.iter().enumerate() {
            // System: all equalities + other (not yet dropped) inequalities
            // + ¬c  (i.e. -row - 1 >= 0). If empty, c is implied.
            let mut sys = Polyhedron::universe(self.n_dims);
            for k in &kept {
                sys.add(k.clone());
            }
            for (j, o) in ineqs.iter().enumerate() {
                if j > i {
                    sys.add(o.clone());
                }
            }
            let neg: Vec<i64> = c
                .row
                .iter()
                .enumerate()
                .map(|(k, &v)| if k == self.n_dims { -v - 1 } else { -v })
                .collect();
            sys.add(Constraint::ge(neg));
            if !sys.is_empty() {
                kept.push(c.clone());
            }
        }
        Polyhedron {
            n_dims: self.n_dims,
            constraints: kept,
        }
    }

    /// Enumerates every integer point of a *bounded* polyhedron in
    /// lexicographic order of its dimensions. Panics (via assert) if any
    /// dimension turns out unbounded. Intended for tests and the
    /// trace-driven cache simulator on miniature problem sizes.
    pub fn enumerate(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut point = vec![0i64; self.n_dims];
        self.enum_rec(0, &mut point, &mut out);
        out
    }

    fn enum_rec(&self, d: usize, point: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if d == self.n_dims {
            if self.contains(point) {
                out.push(point.clone());
            }
            return;
        }
        // Project away dims > d to get bounds on d given point[..d].
        let mut p = self.clone();
        for (k, &v) in point[..d].iter().enumerate() {
            p = p.fix(k, v);
        }
        for inner in (d + 1..self.n_dims).rev() {
            p = p.eliminate(inner);
        }
        if p.has_false_constant() {
            return;
        }
        let b = p.bounds(d, self.n_dims);
        let prefix: Vec<i64> = {
            let mut v = point.clone();
            // bounds expressions span all dims; zero out unknown tail.
            for x in v[d..].iter_mut() {
                *x = 0;
            }
            v
        };
        let lo = b
            .lower
            .iter()
            .map(|e| e.eval_ceil(&prefix))
            .max()
            .expect("enumerate: dimension unbounded below");
        let hi = b
            .upper
            .iter()
            .map(|e| e.eval_floor(&prefix))
            .min()
            .expect("enumerate: dimension unbounded above");
        for v in lo..=hi {
            point[d] = v;
            self.enum_rec(d + 1, point, out);
        }
        point[d] = 0;
    }

    /// Returns some integer point of the polyhedron, or `None` if it is
    /// empty (bounded sets only; used by tests).
    pub fn sample(&self) -> Option<Vec<i64>> {
        let mut point = vec![0i64; self.n_dims];
        if self.sample_rec(0, &mut point) {
            Some(point)
        } else {
            None
        }
    }

    fn sample_rec(&self, d: usize, point: &mut Vec<i64>) -> bool {
        if d == self.n_dims {
            return self.contains(point);
        }
        let mut p = self.clone();
        for (k, &v) in point[..d].iter().enumerate() {
            p = p.fix(k, v);
        }
        for inner in (d + 1..self.n_dims).rev() {
            p = p.eliminate(inner);
        }
        if p.has_false_constant() {
            return false;
        }
        let b = p.bounds(d, self.n_dims);
        let prefix: Vec<i64> = {
            let mut v = point.clone();
            for x in v[d..].iter_mut() {
                *x = 0;
            }
            v
        };
        let lo = b.lower.iter().map(|e| e.eval_ceil(&prefix)).max();
        let hi = b.upper.iter().map(|e| e.eval_floor(&prefix)).min();
        let (Some(lo), Some(hi)) = (lo, hi) else {
            return false; // Unbounded: refuse rather than loop forever.
        };
        for v in lo..=hi {
            point[d] = v;
            if self.sample_rec(d + 1, point) {
                return true;
            }
        }
        point[d] = 0;
        false
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Polyhedron({} dims) {{", self.n_dims)?;
        for c in &self.constraints {
            writeln!(f, "  {c:?}")?;
        }
        write!(f, "}}")
    }
}

/// The lower/upper bound expressions of one dimension of a polyhedron.
#[derive(Clone, Debug)]
pub struct DimBounds {
    /// Combine with `max` of ceiling divisions.
    pub lower: Vec<AffineExpr>,
    /// Combine with `min` of floor divisions.
    pub upper: Vec<AffineExpr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle 0 <= j <= i < 4.
    fn triangle() -> Polyhedron {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::ge(vec![1, 0, 0])); // i >= 0
        p.add(Constraint::ge(vec![-1, 0, 3])); // i <= 3
        p.add(Constraint::ge(vec![0, 1, 0])); // j >= 0
        p.add(Constraint::ge(vec![1, -1, 0])); // j <= i
        p
    }

    #[test]
    fn containment() {
        let t = triangle();
        assert!(t.contains(&[0, 0]));
        assert!(t.contains(&[3, 3]));
        assert!(!t.contains(&[2, 3]));
        assert!(!t.contains(&[4, 0]));
    }

    #[test]
    fn enumeration_counts_triangle_points() {
        let t = triangle();
        let pts = t.enumerate();
        assert_eq!(pts.len(), 4 + 3 + 2 + 1);
        // Lexicographic order check.
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn emptiness() {
        let mut p = triangle();
        assert!(!p.is_empty());
        p.add(Constraint::ge(vec![0, 1, -10])); // j >= 10 contradicts j <= 3
        assert!(p.is_empty());
    }

    #[test]
    fn equality_lattice_emptiness() {
        // 0 <= x < 10, 2x == 5 : rationally nonempty, integrally empty.
        let mut p = Polyhedron::universe(1);
        p.bound_const(0, 0, 10);
        p.add(Constraint::eq(vec![2, -5]));
        assert!(p.is_empty());
    }

    #[test]
    fn projection_of_triangle_onto_i() {
        let t = triangle();
        let p = t.eliminate(1);
        // After eliminating j the projection is 0 <= i <= 3.
        assert!(p.contains(&[0, 99]));
        assert!(p.contains(&[3, -7]));
        assert!(!p.contains(&[4, 0]));
        assert!(!p.contains(&[-1, 0]));
    }

    #[test]
    fn bounds_extraction() {
        let t = triangle();
        // Inner dim j: bounds given i.
        let b = t.bounds(1, 2);
        assert_eq!(b.lower.len(), 1);
        assert_eq!(b.upper.len(), 1);
        assert_eq!(b.lower[0].eval_ceil(&[2, 0]), 0);
        assert_eq!(b.upper[0].eval_floor(&[2, 0]), 2);
    }

    #[test]
    fn fix_pins_dimension() {
        let t = triangle();
        let p = t.fix(0, 2);
        let pts = p.enumerate();
        assert_eq!(pts, vec![vec![2, 0], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn sample_finds_point_or_none() {
        let t = triangle();
        let s = t.sample().unwrap();
        assert!(t.contains(&s));
        let mut empty = triangle();
        empty.add(Constraint::ge(vec![-1, 0, -1])); // i <= -1
        assert!(empty.sample().is_none());
    }

    #[test]
    fn intersect_is_conjunction() {
        let t = triangle();
        let mut half = Polyhedron::universe(2);
        half.add(Constraint::ge(vec![1, 0, -2])); // i >= 2
        let x = t.intersect(&half);
        let pts = x.enumerate();
        assert!(pts.iter().all(|p| p[0] >= 2));
        assert_eq!(pts.len(), 3 + 4);
    }

    #[test]
    fn simplify_drops_implied_constraints() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::ge(vec![1, 0])); // x >= 0
        p.add(Constraint::ge(vec![1, 5])); // x >= -5 (implied)
        p.add(Constraint::ge(vec![-1, 9])); // x <= 9
        p.add(Constraint::ge(vec![-1, 20])); // x <= 20 (implied)
        let sp = p.simplify();
        assert_eq!(sp.constraints().len(), 2, "{sp:?}");
        assert_eq!(sp.enumerate(), p.enumerate());
    }

    #[test]
    fn simplify_keeps_tight_triangular_constraints() {
        let t = triangle().simplify();
        assert_eq!(t.enumerate().len(), 10);
        // i >= 0 is implied by j >= 0 ∧ j <= i: three rows remain.
        assert_eq!(t.constraints().len(), 3);
    }

    #[test]
    fn simplify_preserves_equalities() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::eq(vec![1, -1, 0])); // x == y
        p.bound_const(0, 0, 5);
        let sp = p.simplify();
        assert!(sp.constraints().iter().any(|c| c.op == CmpOp::Eq));
        assert_eq!(sp.enumerate(), p.enumerate());
    }

    #[test]
    fn skewed_set_bounds_are_triangular() {
        // { (t, x) : 0 <= t < 4, t <= x < t + 4 } — a skewed band.
        let mut p = Polyhedron::universe(2);
        p.bound_const(0, 0, 4);
        p.add(Constraint::ge(vec![-1, 1, 0])); // x >= t
        p.add(Constraint::ge(vec![1, -1, 3])); // x <= t + 3
        assert_eq!(p.enumerate().len(), 16);
        let b = p.bounds(1, 2);
        assert_eq!(b.lower[0].eval_ceil(&[2, 0]), 2);
        assert_eq!(b.upper[0].eval_floor(&[2, 0]), 5);
    }
}
