//! Affine constraints and integer polyhedra.
//!
//! A [`Polyhedron`] is a conjunction of affine constraints over an ordered
//! list of `n_dims` dimensions. The meaning of each dimension (loop
//! iterator, structure parameter like `NI`, schedule time dimension, …) is
//! assigned by the caller; this module only knows the column layout
//! `[x_0, …, x_{n-1}, 1]` — every constraint row carries `n_dims`
//! coefficients followed by one constant term.

use crate::fm;
use crate::gcd::{normalize_eq_row, normalize_row};
use std::fmt;

/// Constraint comparison operator, interpreted as `coeffs · x + c OP 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `coeffs · x + c >= 0`
    Ge,
    /// `coeffs · x + c == 0`
    Eq,
}

/// A single affine constraint `coeffs[..n] · x + coeffs[n] OP 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// `n_dims` coefficients followed by the constant term.
    pub row: Vec<i64>,
    /// Comparison against zero.
    pub op: CmpOp,
}

impl Constraint {
    /// Inequality `row · [x, 1] >= 0`.
    pub fn ge(row: Vec<i64>) -> Constraint {
        Constraint { row, op: CmpOp::Ge }
    }

    /// Equality `row · [x, 1] == 0`.
    pub fn eq(row: Vec<i64>) -> Constraint {
        Constraint { row, op: CmpOp::Eq }
    }

    /// Coefficient of dimension `d`.
    pub fn coeff(&self, d: usize) -> i64 {
        self.row[d]
    }

    /// The constant term.
    pub fn constant(&self) -> i64 {
        *self.row.last().expect("empty constraint row")
    }

    /// Number of dimensions the constraint spans.
    pub fn n_dims(&self) -> usize {
        self.row.len() - 1
    }

    /// Evaluates `coeffs · point + c`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.n_dims(), "point arity mismatch");
        self.row[..self.n_dims()]
            .iter()
            .zip(point)
            .map(|(a, x)| a * x)
            .sum::<i64>()
            + self.constant()
    }

    /// True iff `point` satisfies the constraint.
    pub fn holds(&self, point: &[i64]) -> bool {
        let v = self.eval(point);
        match self.op {
            CmpOp::Ge => v >= 0,
            CmpOp::Eq => v == 0,
        }
    }

    /// True when the constraint mentions dimension `d`.
    pub fn mentions(&self, d: usize) -> bool {
        self.row[d] != 0
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.n_dims();
        let mut first = true;
        for (d, &a) in self.row[..n].iter().enumerate() {
            if a == 0 {
                continue;
            }
            if first {
                if a == 1 {
                    write!(f, "x{d}")?;
                } else if a == -1 {
                    write!(f, "-x{d}")?;
                } else {
                    write!(f, "{a}*x{d}")?;
                }
                first = false;
            } else if a > 0 {
                if a == 1 {
                    write!(f, " + x{d}")?;
                } else {
                    write!(f, " + {a}*x{d}")?;
                }
            } else if a == -1 {
                write!(f, " - x{d}")?;
            } else {
                write!(f, " - {}*x{d}", -a)?;
            }
        }
        let c = self.constant();
        if first {
            write!(f, "{c}")?;
        } else if c > 0 {
            write!(f, " + {c}")?;
        } else if c < 0 {
            write!(f, " - {}", -c)?;
        }
        match self.op {
            CmpOp::Ge => write!(f, " >= 0"),
            CmpOp::Eq => write!(f, " == 0"),
        }
    }
}

/// An affine expression `(coeffs · x + c) / denom` with `denom > 0`,
/// used to report loop bounds extracted from a polyhedron. The division is
/// to be interpreted as ceiling for lower bounds and floor for upper bounds.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// `n_dims` coefficients followed by the constant term.
    pub row: Vec<i64>,
    /// Positive divisor.
    pub denom: i64,
}

impl AffineExpr {
    /// Builds an expression with unit denominator.
    pub fn new(row: Vec<i64>) -> AffineExpr {
        AffineExpr { row, denom: 1 }
    }

    /// Evaluates with floor division.
    pub fn eval_floor(&self, point: &[i64]) -> i64 {
        self.raw_eval(point).div_euclid(self.denom)
    }

    /// Evaluates with ceiling division.
    pub fn eval_ceil(&self, point: &[i64]) -> i64 {
        -((-self.raw_eval(point)).div_euclid(self.denom))
    }

    fn raw_eval(&self, point: &[i64]) -> i64 {
        let n = self.row.len() - 1;
        assert_eq!(point.len(), n, "point arity mismatch");
        self.row[..n]
            .iter()
            .zip(point)
            .map(|(a, x)| a * x)
            .sum::<i64>()
            + self.row[n]
    }

    /// True when the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        let n = self.row.len() - 1;
        self.row[..n].iter().all(|&a| a == 0)
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fake = Constraint::ge(self.row.clone());
        let body = format!("{fake:?}");
        let body = body.trim_end_matches(" >= 0");
        if self.denom == 1 {
            write!(f, "{body}")
        } else {
            write!(f, "({body})/{}", self.denom)
        }
    }
}

/// A (possibly unbounded) convex integer polyhedron: the conjunction of a
/// set of affine constraints over `n_dims` dimensions.
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    n_dims: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe polyhedron over `n_dims` dimensions.
    pub fn universe(n_dims: usize) -> Polyhedron {
        Polyhedron {
            n_dims,
            constraints: Vec::new(),
        }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Borrows the constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one constraint (with normalization / gcd tightening).
    pub fn add(&mut self, mut c: Constraint) {
        assert_eq!(c.n_dims(), self.n_dims, "constraint arity mismatch");
        match c.op {
            CmpOp::Ge => {
                normalize_row(&mut c.row);
            }
            CmpOp::Eq => {
                if !normalize_eq_row(&mut c.row) {
                    // Integrally infeasible equality: record an explicitly
                    // false constraint so emptiness tests succeed fast.
                    self.constraints.push(Constraint::ge(
                        std::iter::repeat(0)
                            .take(self.n_dims)
                            .chain(std::iter::once(-1))
                            .collect(),
                    ));
                    return;
                }
            }
        }
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// Adds `x_d >= lo` and `x_d <= hi - 1`, i.e. the half-open interval
    /// `lo <= x_d < hi` with constant bounds. Convenience for tests.
    pub fn bound_const(&mut self, d: usize, lo: i64, hi: i64) {
        let mut low = vec![0; self.n_dims + 1];
        low[d] = 1;
        low[self.n_dims] = -lo;
        self.add(Constraint::ge(low));
        let mut up = vec![0; self.n_dims + 1];
        up[d] = -1;
        up[self.n_dims] = hi - 1;
        self.add(Constraint::ge(up));
    }

    /// Intersection of two polyhedra over the same space.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.n_dims, other.n_dims, "space mismatch in intersect");
        let mut out = self.clone();
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// True iff the integer point satisfies every constraint.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(point))
    }

    /// Eliminates dimension `d` by exact equality substitution where
    /// possible and Fourier–Motzkin combination otherwise. The resulting
    /// polyhedron still has `n_dims` dimensions but no constraint mentions
    /// `d` (its projection along `d`).
    pub fn eliminate(&self, d: usize) -> Polyhedron {
        assert!(d < self.n_dims, "eliminate: dimension out of range");
        let rows = fm::eliminate_dim(&self.constraints, d);
        let mut out = Polyhedron::universe(self.n_dims);
        for c in rows {
            out.add(c);
        }
        out
    }

    /// Projects onto the first `k` dimensions by eliminating all others
    /// (dimension count is preserved; eliminated columns become zero).
    /// Dimensions at or beyond `keep_from` (e.g. parameters placed at the
    /// tail of the space) can be retained by passing their start index.
    pub fn project_keep(&self, k: usize, keep_from: usize) -> Polyhedron {
        let mut p = self.clone();
        for d in (k..keep_from).rev() {
            p = p.eliminate(d);
        }
        p
    }

    /// Rational (hence integer-conservative) emptiness test: eliminates
    /// every dimension and checks whether a contradictory constant
    /// constraint remains. Thanks to gcd tightening, exact equality
    /// substitution, and stratified-equality splitting (which recovers
    /// the digit-wise structure of linearized array addresses such as
    /// `N·i + j`), the test is exact on all sets built from
    /// PolyBench-style programs, including two-copy conflict systems
    /// over linearized addresses.
    pub fn is_empty(&self) -> bool {
        // Fast path: an explicitly false constraint.
        if self.has_false_constant() {
            return true;
        }
        let mut p = self.clone();
        p.split_stratified_equalities();
        let dims: Vec<usize> = (0..self.n_dims).collect();
        p = p.eliminate_many(&dims);
        p.has_false_constant()
    }

    /// Eliminates every dimension in `dims`, returning the shadow over
    /// the remaining ones. Same greedy order, dominated-row pruning and
    /// interval-hull reduction as [`Polyhedron::is_empty`] (hull rows
    /// and hull-implied drops are equivalence-preserving, so the shadow
    /// is unchanged by them). The result is the rational shadow — a
    /// sound over-approximation of the integer projection. When row
    /// growth exceeds the internal cap, remaining dimensions are
    /// dropped *unconstrained* (still a sound over-approximation).
    pub fn eliminate_many(&self, dims: &[usize]) -> Polyhedron {
        let mut p = self.clone();
        // Interval-hull fast path: propagation alone often refutes the
        // system (or proves most rows redundant) long before
        // Fourier–Motzkin would, and on densely coupled systems — e.g.
        // skewed wavefront remappings — FM row growth is explosive
        // without this pre-pass.
        if p.hull_reduce() {
            return Polyhedron::contradiction(self.n_dims);
        }
        let mut remaining: Vec<usize> = dims.to_vec();
        while !remaining.is_empty() {
            // Greedy elimination order: substitution steps (a dimension
            // pinned by an equality) are free, then the dimension whose
            // lower×upper product grows the system least. Any order is
            // sound for Fourier–Motzkin; a bad fixed order can square
            // the constraint count at every step on the wide two-copy
            // systems the certifier builds.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &d)| (i, p.elimination_cost(d)))
                .min_by_key(|&(_, cost)| cost)
                .expect("non-empty remaining");
            let d = remaining.swap_remove(pos);
            p = p.eliminate(d);
            p.prune_dominated();
            if p.has_false_constant() {
                return Polyhedron::contradiction(self.n_dims);
            }
            // Re-tighten between steps: combined rows often become
            // hull-refutable or hull-redundant long before further
            // elimination would expose the contradiction.
            if p.hull_reduce() {
                return Polyhedron::contradiction(self.n_dims);
            }
            if p.constraints.len() > 4000 {
                // Row growth is out of hand; drop the remaining
                // dimensions unconstrained. Sound: the result is a
                // (wider) over-approximation of the shadow, and for
                // emptiness tests it reads as "not proven empty".
                p.constraints
                    .retain(|c| remaining.iter().all(|&d| !c.mentions(d)));
                return p;
            }
        }
        p
    }

    /// The canonical empty polyhedron: a single explicitly false row.
    fn contradiction(n_dims: usize) -> Polyhedron {
        let mut row = vec![0i64; n_dims + 1];
        row[n_dims] = -1;
        Polyhedron {
            n_dims,
            constraints: vec![Constraint::ge(row)],
        }
    }

    /// How much eliminating dimension `d` can grow the system: 0 for a
    /// dimension handled by equality substitution or absent entirely,
    /// otherwise the number of lower×upper combinations minus the rows
    /// removed.
    fn elimination_cost(&self, d: usize) -> i64 {
        let mut lowers = 0i64;
        let mut uppers = 0i64;
        for c in &self.constraints {
            let a = c.coeff(d);
            if a == 0 {
                continue;
            }
            if c.op == CmpOp::Eq {
                return 0;
            }
            if a > 0 {
                lowers += 1;
            } else {
                uppers += 1;
            }
        }
        lowers * uppers - lowers - uppers
    }

    /// Per-dimension interval hull by bounds propagation: for each row
    /// and each variable it mentions, solve the row for that variable
    /// using the current intervals of the others, and tighten. Iterates
    /// to a fixpoint (with a cap, since strict convergence can be slow
    /// on nearly-redundant chains). Sound — every returned interval
    /// contains the true projection — but not exact.
    fn interval_hull(&self) -> Vec<(Option<i64>, Option<i64>)> {
        let n = self.n_dims;
        let mut lo: Vec<Option<i64>> = vec![None; n];
        let mut hi: Vec<Option<i64>> = vec![None; n];
        // One directed row per inequality; equalities contribute both
        // directions.
        let mut rows: Vec<Vec<i64>> = Vec::new();
        for c in &self.constraints {
            rows.push(c.row.clone());
            if c.op == CmpOp::Eq {
                rows.push(c.row.iter().map(|&x| x.saturating_neg()).collect());
            }
        }
        for _ in 0..(2 * n + 4) {
            let mut changed = false;
            for row in &rows {
                // row: Σ a_v·x_v + k >= 0, so for each v with a_v != 0:
                //   a_v·x_v >= -k - Σ_{u≠v} a_u·x_u >= -k - Σ_{u≠v} max(a_u·x_u).
                for v in 0..n {
                    let a = row[v];
                    if a == 0 {
                        continue;
                    }
                    let mut rhs: i64 = row[n].saturating_neg();
                    let mut bounded = true;
                    for u in 0..n {
                        if u == v || row[u] == 0 {
                            continue;
                        }
                        // Maximum of a_u·x_u over the current interval.
                        let m = if row[u] > 0 { hi[u] } else { lo[u] };
                        match m {
                            Some(x) => rhs = rhs.saturating_sub(row[u].saturating_mul(x)),
                            None => {
                                bounded = false;
                                break;
                            }
                        }
                    }
                    if !bounded {
                        continue;
                    }
                    // Saturated magnitudes carry no information (and would
                    // cascade overflows); treat them as unbounded.
                    const HUGE: i64 = i64::MAX / 4;
                    if rhs.abs() >= HUGE {
                        continue;
                    }
                    if a > 0 {
                        let b = rhs.div_euclid(a) + i64::from(rhs.rem_euclid(a) != 0);
                        if lo[v].is_none_or(|cur| b > cur) {
                            lo[v] = Some(b);
                            changed = true;
                        }
                    } else {
                        let b = rhs.div_euclid(a);
                        if hi[v].is_none_or(|cur| b < cur) {
                            hi[v] = Some(b);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        lo.into_iter().zip(hi).collect()
    }

    /// Interval-hull reduction. Returns `true` when propagation alone
    /// refutes the system (a row infeasible over the hull, or an empty
    /// per-dimension interval). Otherwise materializes the hull as
    /// explicit interval rows and drops every original row the hull
    /// implies — an equivalence-preserving rewrite (the hull rows are
    /// consequences of the full system, and a row satisfied everywhere
    /// on the hull adds nothing once the hull is explicit) that
    /// typically collapses densely coupled systems to a small core
    /// before Fourier–Motzkin runs.
    fn hull_reduce(&mut self) -> bool {
        let n = self.n_dims;
        let hull = self.interval_hull();
        for &(lo, hi) in &hull {
            if let (Some(lo), Some(hi)) = (lo, hi) {
                if lo > hi {
                    return true;
                }
            }
        }
        // Row extremes over the hull: min (for redundancy) and max (for
        // refutation); `None` when some mentioned dimension is unbounded
        // on the relevant side.
        let extreme = |row: &[i64], want_max: bool| -> Option<i64> {
            let mut acc = row[n];
            for v in 0..n {
                let a = row[v];
                if a == 0 {
                    continue;
                }
                let pick = if (a > 0) == want_max { hull[v].1 } else { hull[v].0 };
                acc = acc.saturating_add(a.saturating_mul(pick?));
            }
            Some(acc)
        };
        let mut kept = Vec::with_capacity(self.constraints.len());
        for c in std::mem::take(&mut self.constraints) {
            match c.op {
                CmpOp::Ge => {
                    if extreme(&c.row, true).is_some_and(|mx| mx < 0) {
                        return true;
                    }
                    if extreme(&c.row, false).is_some_and(|mn| mn >= 0) {
                        continue; // implied by the hull rows added below
                    }
                }
                CmpOp::Eq => {
                    if extreme(&c.row, true).is_some_and(|mx| mx < 0)
                        || extreme(&c.row, false).is_some_and(|mn| mn > 0)
                    {
                        return true;
                    }
                }
            }
            kept.push(c);
        }
        self.constraints = kept;
        for (v, &(lo, hi)) in hull.iter().enumerate() {
            if let Some(lo) = lo {
                let mut row = vec![0i64; n + 1];
                row[v] = 1;
                row[n] = -lo;
                self.add(Constraint::ge(row));
            }
            if let Some(hi) = hi {
                let mut row = vec![0i64; n + 1];
                row[v] = -1;
                row[n] = hi;
                self.add(Constraint::ge(row));
            }
        }
        false
    }

    /// Integer tightening of mixed-scale equalities (the Omega test's
    /// equality stratification): a row `m·A(x) + L(x) == 0` whose
    /// low-order part `L` (the terms not divisible by the dominant
    /// coefficient `m`, plus the constant) provably lies in `(-m, m)`
    /// forces `A(x) == 0` and `L(x) == 0` over the integers — the
    /// rational relaxation keeps fractional solutions that mix the
    /// strata. This is exactly the structure of linearized array
    /// addresses (`N·i + j` with `0 <= j < N`), so without the split a
    /// two-copy conflict system over such addresses is rationally
    /// feasible even when no integer conflict exists. Applied to a
    /// fixpoint so multi-level linearizations (`N²·i + N·j + k`) peel
    /// one stratum per round.
    fn split_stratified_equalities(&mut self) {
        let n = self.n_dims;
        for _ in 0..8 {
            let hull = self.interval_hull();
            let mut extra: Vec<Constraint> = Vec::new();
            let mut drop: Vec<usize> = Vec::new();
            for (i, c) in self.constraints.iter().enumerate() {
                if c.op != CmpOp::Eq {
                    continue;
                }
                let m = c.row[..n].iter().map(|a| a.abs()).max().unwrap_or(0);
                if m <= 1 {
                    continue;
                }
                let low: Vec<usize> = (0..n)
                    .filter(|&v| c.row[v] != 0 && c.row[v] % m != 0)
                    .collect();
                if low.is_empty() {
                    continue;
                }
                // Bound L = Σ_low a_v·x_v + k over the interval hull.
                let (mut l_lo, mut l_hi) = (c.row[n], c.row[n]);
                let mut bounded = true;
                for &v in &low {
                    let a = c.row[v];
                    let (vlo, vhi) = hull[v];
                    let (Some(vlo), Some(vhi)) = (vlo, vhi) else {
                        bounded = false;
                        break;
                    };
                    let (t1, t2) = (a.saturating_mul(vlo), a.saturating_mul(vhi));
                    l_lo = l_lo.saturating_add(t1.min(t2));
                    l_hi = l_hi.saturating_add(t1.max(t2));
                }
                if !bounded || l_lo <= -m || l_hi >= m {
                    continue;
                }
                // Split: the high-order stratum (divided by m) and the
                // low-order remainder must each vanish.
                let mut high_row = vec![0i64; n + 1];
                let mut low_row = vec![0i64; n + 1];
                for v in 0..n {
                    if c.row[v] % m == 0 {
                        high_row[v] = c.row[v] / m;
                    } else {
                        low_row[v] = c.row[v];
                    }
                }
                low_row[n] = c.row[n];
                extra.push(Constraint::eq(high_row));
                extra.push(Constraint::eq(low_row));
                drop.push(i);
            }
            if extra.is_empty() {
                return;
            }
            for &i in drop.iter().rev() {
                self.constraints.remove(i);
            }
            for c in extra {
                self.add(c);
            }
        }
    }

    /// Drops inequality rows dominated by another row with identical
    /// coefficients and a constant at least as tight. Rows are already
    /// gcd-normalized by [`Polyhedron::add`], so syntactic comparison of
    /// the coefficient vector is enough. Keeps Fourier–Motzkin blowup in
    /// check between eliminations.
    fn prune_dominated(&mut self) {
        use std::collections::HashMap;
        let n = self.n_dims;
        let mut best: HashMap<Vec<i64>, i64> = HashMap::new();
        for c in &self.constraints {
            if c.op != CmpOp::Ge {
                continue;
            }
            let e = best.entry(c.row[..n].to_vec()).or_insert(c.constant());
            // `coeffs·x + k >= 0`: the smaller constant is the tighter row.
            *e = (*e).min(c.constant());
        }
        let mut kept = Vec::with_capacity(self.constraints.len());
        for c in std::mem::take(&mut self.constraints) {
            if c.op == CmpOp::Ge && best.get(&c.row[..n]) != Some(&c.constant()) {
                continue;
            }
            kept.push(c);
        }
        self.constraints = kept;
    }

    fn has_false_constant(&self) -> bool {
        self.constraints.iter().any(|c| {
            let n = c.n_dims();
            c.row[..n].iter().all(|&a| a == 0)
                && match c.op {
                    CmpOp::Ge => c.constant() < 0,
                    CmpOp::Eq => c.constant() != 0,
                }
        })
    }

    /// Substitutes the fixed integer `value` for dimension `d`; the
    /// dimension remains in the space but is pinned by an equality.
    pub fn fix(&self, d: usize, value: i64) -> Polyhedron {
        let mut out = self.clone();
        let mut row = vec![0; self.n_dims + 1];
        row[d] = 1;
        row[self.n_dims] = -value;
        out.add(Constraint::eq(row));
        out
    }

    /// Lower and upper bound expressions for dimension `d`, read off the
    /// constraints that mention `d`.
    ///
    /// Every returned lower bound is to be combined with `max` and ceiling
    /// division; upper bounds with `min` and floor division. The caller is
    /// responsible for having eliminated any *inner* dimensions first (the
    /// usual code-generation discipline): constraints mentioning dimensions
    /// other than `d` below `inner_from` are rejected with a panic.
    pub fn bounds(&self, d: usize, inner_from: usize) -> DimBounds {
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for c in &self.constraints {
            let a = c.coeff(d);
            if a == 0 {
                continue;
            }
            for inner in d + 1..inner_from {
                assert!(
                    !c.mentions(inner),
                    "bounds({d}): constraint still mentions inner dim {inner}: {c:?}"
                );
            }
            // a * x_d + rest OP 0.
            let mut rest = c.row.clone();
            rest[d] = 0;
            match c.op {
                CmpOp::Ge if a > 0 => {
                    // x_d >= ceil(-rest / a)
                    let neg: Vec<i64> = rest.iter().map(|&v| -v).collect();
                    lower.push(AffineExpr { row: neg, denom: a });
                }
                CmpOp::Ge => {
                    // (-a) * x_d <= rest  =>  x_d <= floor(rest / -a)
                    upper.push(AffineExpr {
                        row: rest,
                        denom: -a,
                    });
                }
                CmpOp::Eq => {
                    let neg: Vec<i64> = rest.iter().map(|&v| -v).collect();
                    if a > 0 {
                        lower.push(AffineExpr {
                            row: neg.clone(),
                            denom: a,
                        });
                        upper.push(AffineExpr { row: neg, denom: a });
                    } else {
                        lower.push(AffineExpr {
                            row: rest.clone(),
                            denom: -a,
                        });
                        upper.push(AffineExpr {
                            row: rest,
                            denom: -a,
                        });
                    }
                }
            }
        }
        DimBounds { lower, upper }
    }

    /// Removes redundant constraints: an inequality is dropped when the
    /// polyhedron minus it still implies it (checked by emptiness of the
    /// system with the constraint negated). Equalities are kept as-is.
    /// The result describes the same integer set with (usually) fewer
    /// rows — worthwhile before extracting loop bounds, where every
    /// surviving row becomes a `max`/`min` term in generated code.
    pub fn simplify(&self) -> Polyhedron {
        let mut kept: Vec<Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.op == CmpOp::Eq)
            .cloned()
            .collect();
        let ineqs: Vec<Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.op == CmpOp::Ge)
            .cloned()
            .collect();
        for (i, c) in ineqs.iter().enumerate() {
            // System: all equalities + other (not yet dropped) inequalities
            // + ¬c  (i.e. -row - 1 >= 0). If empty, c is implied.
            let mut sys = Polyhedron::universe(self.n_dims);
            for k in &kept {
                sys.add(k.clone());
            }
            for (j, o) in ineqs.iter().enumerate() {
                if j > i {
                    sys.add(o.clone());
                }
            }
            let neg: Vec<i64> = c
                .row
                .iter()
                .enumerate()
                .map(|(k, &v)| if k == self.n_dims { -v - 1 } else { -v })
                .collect();
            sys.add(Constraint::ge(neg));
            if !sys.is_empty() {
                kept.push(c.clone());
            }
        }
        Polyhedron {
            n_dims: self.n_dims,
            constraints: kept,
        }
    }

    /// Enumerates every integer point of a *bounded* polyhedron in
    /// lexicographic order of its dimensions. Panics (via assert) if any
    /// dimension turns out unbounded. Intended for tests and the
    /// trace-driven cache simulator on miniature problem sizes.
    pub fn enumerate(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut point = vec![0i64; self.n_dims];
        self.enum_rec(0, &mut point, &mut out);
        out
    }

    fn enum_rec(&self, d: usize, point: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if d == self.n_dims {
            if self.contains(point) {
                out.push(point.clone());
            }
            return;
        }
        // Project away dims > d to get bounds on d given point[..d].
        let mut p = self.clone();
        for (k, &v) in point[..d].iter().enumerate() {
            p = p.fix(k, v);
        }
        for inner in (d + 1..self.n_dims).rev() {
            p = p.eliminate(inner);
        }
        if p.has_false_constant() {
            return;
        }
        let b = p.bounds(d, self.n_dims);
        let prefix: Vec<i64> = {
            let mut v = point.clone();
            // bounds expressions span all dims; zero out unknown tail.
            for x in v[d..].iter_mut() {
                *x = 0;
            }
            v
        };
        let lo = b
            .lower
            .iter()
            .map(|e| e.eval_ceil(&prefix))
            .max()
            .expect("enumerate: dimension unbounded below");
        let hi = b
            .upper
            .iter()
            .map(|e| e.eval_floor(&prefix))
            .min()
            .expect("enumerate: dimension unbounded above");
        for v in lo..=hi {
            point[d] = v;
            self.enum_rec(d + 1, point, out);
        }
        point[d] = 0;
    }

    /// Returns some integer point of the polyhedron, or `None` if it is
    /// empty (bounded sets only; used by tests).
    pub fn sample(&self) -> Option<Vec<i64>> {
        let mut point = vec![0i64; self.n_dims];
        if self.sample_rec(0, &mut point) {
            Some(point)
        } else {
            None
        }
    }

    fn sample_rec(&self, d: usize, point: &mut Vec<i64>) -> bool {
        if d == self.n_dims {
            return self.contains(point);
        }
        let mut p = self.clone();
        for (k, &v) in point[..d].iter().enumerate() {
            p = p.fix(k, v);
        }
        for inner in (d + 1..self.n_dims).rev() {
            p = p.eliminate(inner);
        }
        if p.has_false_constant() {
            return false;
        }
        let b = p.bounds(d, self.n_dims);
        let prefix: Vec<i64> = {
            let mut v = point.clone();
            for x in v[d..].iter_mut() {
                *x = 0;
            }
            v
        };
        let lo = b.lower.iter().map(|e| e.eval_ceil(&prefix)).max();
        let hi = b.upper.iter().map(|e| e.eval_floor(&prefix)).min();
        let (Some(lo), Some(hi)) = (lo, hi) else {
            return false; // Unbounded: refuse rather than loop forever.
        };
        for v in lo..=hi {
            point[d] = v;
            if self.sample_rec(d + 1, point) {
                return true;
            }
        }
        point[d] = 0;
        false
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Polyhedron({} dims) {{", self.n_dims)?;
        for c in &self.constraints {
            writeln!(f, "  {c:?}")?;
        }
        write!(f, "}}")
    }
}

/// The lower/upper bound expressions of one dimension of a polyhedron.
#[derive(Clone, Debug)]
pub struct DimBounds {
    /// Combine with `max` of ceiling divisions.
    pub lower: Vec<AffineExpr>,
    /// Combine with `min` of floor divisions.
    pub upper: Vec<AffineExpr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle 0 <= j <= i < 4.
    fn triangle() -> Polyhedron {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::ge(vec![1, 0, 0])); // i >= 0
        p.add(Constraint::ge(vec![-1, 0, 3])); // i <= 3
        p.add(Constraint::ge(vec![0, 1, 0])); // j >= 0
        p.add(Constraint::ge(vec![1, -1, 0])); // j <= i
        p
    }

    #[test]
    fn containment() {
        let t = triangle();
        assert!(t.contains(&[0, 0]));
        assert!(t.contains(&[3, 3]));
        assert!(!t.contains(&[2, 3]));
        assert!(!t.contains(&[4, 0]));
    }

    #[test]
    fn enumeration_counts_triangle_points() {
        let t = triangle();
        let pts = t.enumerate();
        assert_eq!(pts.len(), 4 + 3 + 2 + 1);
        // Lexicographic order check.
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn emptiness() {
        let mut p = triangle();
        assert!(!p.is_empty());
        p.add(Constraint::ge(vec![0, 1, -10])); // j >= 10 contradicts j <= 3
        assert!(p.is_empty());
    }

    #[test]
    fn equality_lattice_emptiness() {
        // 0 <= x < 10, 2x == 5 : rationally nonempty, integrally empty.
        let mut p = Polyhedron::universe(1);
        p.bound_const(0, 0, 10);
        p.add(Constraint::eq(vec![2, -5]));
        assert!(p.is_empty());
    }

    #[test]
    fn projection_of_triangle_onto_i() {
        let t = triangle();
        let p = t.eliminate(1);
        // After eliminating j the projection is 0 <= i <= 3.
        assert!(p.contains(&[0, 99]));
        assert!(p.contains(&[3, -7]));
        assert!(!p.contains(&[4, 0]));
        assert!(!p.contains(&[-1, 0]));
    }

    #[test]
    fn bounds_extraction() {
        let t = triangle();
        // Inner dim j: bounds given i.
        let b = t.bounds(1, 2);
        assert_eq!(b.lower.len(), 1);
        assert_eq!(b.upper.len(), 1);
        assert_eq!(b.lower[0].eval_ceil(&[2, 0]), 0);
        assert_eq!(b.upper[0].eval_floor(&[2, 0]), 2);
    }

    #[test]
    fn fix_pins_dimension() {
        let t = triangle();
        let p = t.fix(0, 2);
        let pts = p.enumerate();
        assert_eq!(pts, vec![vec![2, 0], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn sample_finds_point_or_none() {
        let t = triangle();
        let s = t.sample().unwrap();
        assert!(t.contains(&s));
        let mut empty = triangle();
        empty.add(Constraint::ge(vec![-1, 0, -1])); // i <= -1
        assert!(empty.sample().is_none());
    }

    #[test]
    fn intersect_is_conjunction() {
        let t = triangle();
        let mut half = Polyhedron::universe(2);
        half.add(Constraint::ge(vec![1, 0, -2])); // i >= 2
        let x = t.intersect(&half);
        let pts = x.enumerate();
        assert!(pts.iter().all(|p| p[0] >= 2));
        assert_eq!(pts.len(), 3 + 4);
    }

    #[test]
    fn simplify_drops_implied_constraints() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::ge(vec![1, 0])); // x >= 0
        p.add(Constraint::ge(vec![1, 5])); // x >= -5 (implied)
        p.add(Constraint::ge(vec![-1, 9])); // x <= 9
        p.add(Constraint::ge(vec![-1, 20])); // x <= 20 (implied)
        let sp = p.simplify();
        assert_eq!(sp.constraints().len(), 2, "{sp:?}");
        assert_eq!(sp.enumerate(), p.enumerate());
    }

    #[test]
    fn simplify_keeps_tight_triangular_constraints() {
        let t = triangle().simplify();
        assert_eq!(t.enumerate().len(), 10);
        // i >= 0 is implied by j >= 0 ∧ j <= i: three rows remain.
        assert_eq!(t.constraints().len(), 3);
    }

    #[test]
    fn simplify_preserves_equalities() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::eq(vec![1, -1, 0])); // x == y
        p.bound_const(0, 0, 5);
        let sp = p.simplify();
        assert!(sp.constraints().iter().any(|c| c.op == CmpOp::Eq));
        assert_eq!(sp.enumerate(), p.enumerate());
    }

    #[test]
    fn skewed_set_bounds_are_triangular() {
        // { (t, x) : 0 <= t < 4, t <= x < t + 4 } — a skewed band.
        let mut p = Polyhedron::universe(2);
        p.bound_const(0, 0, 4);
        p.add(Constraint::ge(vec![-1, 1, 0])); // x >= t
        p.add(Constraint::ge(vec![1, -1, 3])); // x <= t + 3
        assert_eq!(p.enumerate().len(), 16);
        let b = p.bounds(1, 2);
        assert_eq!(b.lower[0].eval_ceil(&[2, 0]), 2);
        assert_eq!(b.upper[0].eval_floor(&[2, 0]), 5);
    }
}
