//! Greatest-common-divisor utilities used across the polyhedral machinery.

/// Euclidean GCD on `i64`, always non-negative. `gcd(0, 0) == 0`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple on `i64`, always non-negative. `lcm(0, x) == 0`.
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).abs() * b.abs()
}

/// GCD of a slice; 0 for an empty or all-zero slice.
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)` and `g >= 0`.
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Normalizes an inequality row `coeffs · x + c >= 0` in place by dividing
/// the variable coefficients and tightening the constant:
/// if `g = gcd(coeffs[..last])`, the row becomes
/// `coeffs/g · x + floor(c/g) >= 0` — the standard integer tightening step.
///
/// The last entry of `row` is treated as the constant term. Rows whose
/// variable part is entirely zero are left untouched. Returns the gcd used.
pub fn normalize_row(row: &mut [i64]) -> i64 {
    let n = row.len();
    if n < 2 {
        return 1;
    }
    let g = gcd_slice(&row[..n - 1]);
    if g <= 1 {
        return 1.max(g);
    }
    for x in row[..n - 1].iter_mut() {
        *x /= g;
    }
    row[n - 1] = row[n - 1].div_euclid(g);
    g
}

/// Normalizes an *equality* row `coeffs · x + c == 0`. Returns `false` when
/// the equality is integrally infeasible (the gcd of the variable part does
/// not divide the constant) — the lattice emptiness ("GCD") test.
pub fn normalize_eq_row(row: &mut [i64]) -> bool {
    let n = row.len();
    if n < 2 {
        return true;
    }
    let g = gcd_slice(&row[..n - 1]);
    if g == 0 {
        // 0 == -c : feasible iff c == 0.
        return row[n - 1] == 0;
    }
    if row[n - 1] % g != 0 {
        return false;
    }
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn extended_gcd_bezout() {
        for (a, b) in [(240, 46), (-240, 46), (7, 0), (0, 7), (-5, -15)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b));
            assert_eq!(a * x + b * y, g, "bezout failed for ({a},{b})");
        }
    }

    #[test]
    fn inequality_tightening_floors_constant() {
        // 2x - 3 >= 0  =>  x - 2 >= 0 (i.e. x >= 1.5 tightens to x >= 2).
        let mut row = vec![2, -3];
        normalize_row(&mut row);
        assert_eq!(row, vec![1, -2]);
    }

    #[test]
    fn equality_gcd_test_detects_lattice_emptiness() {
        // 2x + 4y == 3 has no integer solution.
        let mut row = vec![2, 4, -3];
        assert!(!normalize_eq_row(&mut row));
        // 2x + 4y == 6 does.
        let mut row = vec![2, 4, -6];
        assert!(normalize_eq_row(&mut row));
        assert_eq!(row, vec![1, 2, -3]);
    }

    #[test]
    fn trivial_equality_rows() {
        let mut ok = vec![0, 0, 0];
        assert!(normalize_eq_row(&mut ok));
        let mut bad = vec![0, 0, 5];
        assert!(!normalize_eq_row(&mut bad));
    }
}
