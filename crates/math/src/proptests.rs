//! Property-based tests for the polyhedral math substrate.

use crate::poly::{Constraint, Polyhedron};
use crate::ratio::Ratio;
use proptest::prelude::*;

fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-50i64..=50, 1i64..=12).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #[test]
    fn ratio_add_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn ratio_mul_distributes(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in small_ratio()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Ratio::int(f) <= a);
        prop_assert!(a <= Ratio::int(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn ratio_ordering_total(a in small_ratio(), b in small_ratio()) {
        let lt = a < b;
        let gt = a > b;
        let eq = a == b;
        prop_assert_eq!(lt as u8 + gt as u8 + eq as u8, 1);
    }
}

/// Random small bounded 2-D polyhedra: a box intersected with up to two
/// extra half-planes with coefficients in {-2..2}.
fn small_poly_2d() -> impl Strategy<Value = Polyhedron> {
    (
        0i64..4,
        4i64..8,
        0i64..4,
        4i64..8,
        prop::collection::vec((-2i64..=2, -2i64..=2, -6i64..=6), 0..3),
    )
        .prop_map(|(xl, xh, yl, yh, extra)| {
            let mut p = Polyhedron::universe(2);
            p.bound_const(0, xl, xh);
            p.bound_const(1, yl, yh);
            for (a, b, c) in extra {
                p.add(Constraint::ge(vec![a, b, c]));
            }
            p
        })
}

proptest! {
    /// Every point of the set must satisfy the projection once the
    /// eliminated coordinate is ignored (soundness of FM elimination).
    #[test]
    fn fm_projection_is_sound(p in small_poly_2d()) {
        let proj = p.eliminate(1);
        for pt in p.enumerate() {
            prop_assert!(proj.contains(&pt), "projection rejected {pt:?} of {p:?}");
        }
    }

    /// Emptiness agrees with brute-force enumeration on bounded sets.
    #[test]
    fn emptiness_matches_enumeration(p in small_poly_2d()) {
        let pts = p.enumerate();
        // is_empty may be conservative only in the nonempty direction:
        // if it says empty, enumeration must agree.
        if p.is_empty() {
            prop_assert!(pts.is_empty(), "is_empty lied for {p:?}");
        }
        if !pts.is_empty() {
            prop_assert!(!p.is_empty());
        }
    }

    /// sample() returns a member iff the set is nonempty.
    #[test]
    fn sample_agrees_with_enumeration(p in small_poly_2d()) {
        let pts = p.enumerate();
        match p.sample() {
            Some(s) => {
                prop_assert!(p.contains(&s));
                prop_assert!(!pts.is_empty());
            }
            None => prop_assert!(pts.is_empty()),
        }
    }

    /// fix() then enumerate equals filtering the enumeration.
    #[test]
    fn fix_is_slice(p in small_poly_2d(), v in 0i64..8) {
        let fixed = p.fix(0, v).enumerate();
        let filtered: Vec<_> = p.enumerate().into_iter().filter(|pt| pt[0] == v).collect();
        prop_assert_eq!(fixed, filtered);
    }
}
