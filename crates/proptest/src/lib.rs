//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to a crates registry, so
//! this workspace-local crate implements exactly the slice of the
//! proptest API that our property tests use: `Strategy` over integer
//! ranges / tuples / mapped values / collections, `any::<bool>()`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Cases are generated from a deterministic xorshift RNG seeded
//! per test name, so failures are reproducible run-to-run.
//!
//! Swap the workspace `polymix-proptest` path dependency for the real
//! `proptest` crate and the same test files compile unchanged (shrinking
//! and persistence are the only missing features).

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator, seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the macro passes the test path).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed nonzero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h | 1, // xorshift state must be nonzero
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The generation half of proptest's `Strategy`: produce one value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start).max(1) as u64;
        self.start + rng.below(span) as i64
    }
}

impl Strategy for RangeInclusive<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        let span = (hi - lo + 1).max(1) as u64;
        lo + rng.below(span) as i64
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = self.end.saturating_sub(self.start).max(1) as u64;
        self.start + rng.below(span) as usize
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.size, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, lo..hi)` — a vector whose length is
    /// drawn from `lo..hi` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert!({}) failed",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                ::core::stringify!($lhs),
                ::core::stringify!($rhs),
                l,
                r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Discard the current case (counts as passed, like upstream's rejects).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident
            ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(::core::concat!(
                    ::core::module_path!(), "::", ::core::stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let desc = ::std::format!(
                        ::core::concat!("", $(::core::stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let run = move || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(msg) = run() {
                        ::std::panic!("case {}/{} [{}]: {}", case + 1, config.cases, desc, msg);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(-3i64..=7), &mut rng);
            assert!((-3..=7).contains(&v));
            let w = Strategy::sample(&(2i64..5), &mut rng);
            assert!((2..5).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(a in -5i64..=5, flag in any::<bool>(),
                                      v in prop::collection::vec((0i64..3, 0i64..3), 0..3)) {
            prop_assume!(a > -5);
            prop_assert!((-4..=5).contains(&a));
            prop_assert_eq!(flag || !flag, true);
            prop_assert!(v.len() < 3, "vec too long: {v:?}");
        }
    }
}
