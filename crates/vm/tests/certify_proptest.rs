//! Abstract-soundness fuzz of the bytecode certifier: for random affine
//! loop nests, the abstract address interval the certifier derives for
//! each access must contain every address an instrumented concrete walk
//! of the same bytecode actually touches — and a `proven` verdict must
//! mean no concrete address ever leaves the array.
//!
//! Runs only under `--features proptest` (backed by the offline
//! `crates/proptest` shim) to keep tier-1 fast.
#![cfg(feature = "proptest")]

use polymix_ast::tree::Par;
use polymix_vm::{
    certify, AccessSite, AffExpr, CBound, CLoop, CNode, CompiledStmt, Instr, VmProgram,
    UNMODELED_KNOBS,
};
use proptest::prelude::*;

const N_VARS: usize = 3;

fn aff(coeffs: &[i64], c: i64) -> AffExpr {
    AffExpr {
        terms: coeffs
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k != 0)
            .map(|(v, &k)| (v as u32, k))
            .collect(),
        c,
    }
}

/// Random 3-deep nest over one copy statement (one load, one store,
/// both with random affine addresses). Lower bounds are constants;
/// upper bounds optionally lean on the enclosing variable so
/// triangular shapes are exercised; steps of 2 exercise the
/// certifier's stride over-approximation.
fn program() -> impl Strategy<Value = VmProgram> {
    (
        prop::collection::vec((0i64..3, 3i64..8, 0i64..=1, 1i64..=2), N_VARS..N_VARS + 1),
        (prop::collection::vec(-2i64..=2, N_VARS..N_VARS + 1), 0i64..12),
        (prop::collection::vec(-2i64..=2, N_VARS..N_VARS + 1), 0i64..12),
        1usize..160,
    )
        .prop_map(|(loops, (lc, lk), (sc, sk), len)| {
            let stmt = CompiledStmt {
                code: vec![Instr::Load {
                    dst: 0,
                    array: 0,
                    addr: aff(&lc, lk),
                    proven: false,
                }],
                result: 0,
                store_array: 0,
                store_addr: aff(&sc, sk),
                store_proven: false,
                n_regs: 1,
            };
            let mut body = CNode::Stmt(0);
            for (d, &(lo_c, hi_c, lean, step)) in loops.iter().enumerate().rev() {
                let mut hi = aff(&[], hi_c);
                if lean == 1 && d > 0 {
                    hi.terms.push(((d - 1) as u32, 1));
                }
                body = CNode::Loop(Box::new(CLoop {
                    var: d,
                    lo: CBound {
                        exprs: vec![(aff(&[], lo_c), 1)],
                    },
                    hi: CBound { exprs: vec![(hi, 1)] },
                    step,
                    par: Par::Seq,
                    reduction_array: None,
                    rect_grid: false,
                    body,
                }));
            }
            VmProgram {
                n_vars: N_VARS,
                max_regs: 1,
                array_lens: vec![len],
                stmts: vec![stmt],
                body,
                unmodeled_knobs: UNMODELED_KNOBS,
            }
        })
}

/// Instrumented concrete walk: executes the control tree with the real
/// bound semantics (`eval_lower` / `eval_upper`, inclusive upper,
/// positive stride) and records every address each access computes.
fn walk(n: &CNode, vm: &VmProgram, vars: &mut [i64], out: &mut Vec<(u32, AccessSite, i64)>) {
    match n {
        CNode::Seq(xs) => xs.iter().for_each(|x| walk(x, vm, vars, out)),
        CNode::Guard(gs, b) => {
            if gs.iter().all(|g| g.eval(vars) >= 0) {
                walk(b, vm, vars, out);
            }
        }
        CNode::Stmt(s) => {
            let cs = &vm.stmts[*s as usize];
            for (pos, i) in cs.code.iter().enumerate() {
                if let Instr::Load { addr, .. } = i {
                    out.push((*s, AccessSite::Load(pos), addr.eval(vars)));
                }
            }
            out.push((*s, AccessSite::Store, cs.store_addr.eval(vars)));
        }
        CNode::Loop(l) => {
            let lo = l.lo.eval_lower(vars);
            let hi = l.hi.eval_upper(vars);
            let mut v = lo;
            while v <= hi {
                vars[l.var] = v;
                walk(&l.body, vm, vars, out);
                v += l.step;
            }
        }
    }
}

proptest! {
    /// Observed ⊆ abstract: every concretely computed address lies in
    /// the certifier's interval for that access, and a proven access
    /// never leaves its array.
    #[test]
    fn abstract_range_contains_every_concrete_address(vm in program()) {
        prop_assert!(vm.validate().is_ok(), "generator built invalid bytecode");
        let cert = certify(&vm);
        let mut observed = Vec::new();
        let mut vars = vec![0i64; vm.n_vars];
        walk(&vm.body, &vm, &mut vars, &mut observed);
        for &(stmt, site, addr) in &observed {
            let proof = cert
                .accesses
                .iter()
                .find(|a| a.stmt == stmt && a.site == site);
            let proof = match proof {
                Some(p) => p,
                None => {
                    // A concretely reached access the certifier did not
                    // even enumerate would be an unsoundness.
                    prop_assert!(false, "access ({stmt}, {site:?}) reached but not audited");
                    unreachable!()
                }
            };
            if let Some((lo, hi)) = proof.range {
                prop_assert!(
                    lo <= addr && addr <= hi,
                    "address {addr} outside abstract range [{lo}, {hi}] for ({stmt}, {site:?})"
                );
            }
            if proof.proven {
                let len = vm.array_lens[proof.array as usize] as i64;
                prop_assert!(
                    0 <= addr && addr < len,
                    "proven access ({stmt}, {site:?}) computed out-of-bounds address {addr} (len {len})"
                );
            }
        }
    }
}
