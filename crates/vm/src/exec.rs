//! Bytecode execution: a sequential tree-walk over pre-resolved
//! addresses, with parallel regions dispatched onto the persistent
//! worker pool through the same primitives the emitted kernels use
//! (`par_for` / `reduce_array` / `pipeline_2d` / `wavefront_2d` /
//! `taskgraph_2d`), inheriting their panic containment and poison
//! protocol.
//!
//! Every array access is bounds-checked; a bad address poisons the run
//! (first failure wins) instead of corrupting the host process — the
//! in-process analogue of the subprocess backend's `runtime_error:` +
//! exit path. Nested parallel annotations execute sequentially inside a
//! worker, matching the emitted kernels, which parallelize each region
//! at its outermost annotation only.

use crate::lower::{CLoop, CNode, CompiledStmt, Instr, VmProgram};
use crate::VmError;
use polymix_ast::tree::Par;
use polymix_runtime::{
    par_for, pipeline_2d, reduce_array, taskgraph_2d, wavefront_2d, GridSweep, RuntimeError,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Execution knobs for one run.
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Worker count for parallel regions (1 = fully sequential).
    pub threads: usize,
    /// Dispatch `wavefront` loops through the dynamic counter-graph
    /// runtime instead of diagonal barriers.
    pub taskgraph: bool,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            threads: 1,
            taskgraph: false,
        }
    }
}

/// Shared raw view of one array buffer. Workers only ever touch
/// disjoint elements (guaranteed by the certified parallel
/// annotations), mirroring the `P(*mut f64)` wrapper of emitted
/// kernels.
#[derive(Clone, Copy)]
struct Ptr {
    p: *mut f64,
    len: usize,
}

unsafe impl Send for Ptr {}
unsafe impl Sync for Ptr {}

struct Ctx<'a> {
    vm: &'a VmProgram,
    opts: VmOptions,
    poisoned: AtomicBool,
    fail: Mutex<Option<String>>,
}

/// Executes a lowered program over the given buffers, sequentially.
pub fn run(vm: &VmProgram, arrays: &mut [Vec<f64>]) -> Result<(), VmError> {
    run_opts(vm, arrays, VmOptions::default())
}

/// Executes a lowered program with explicit [`VmOptions`].
pub fn run_opts(
    vm: &VmProgram,
    arrays: &mut [Vec<f64>],
    opts: VmOptions,
) -> Result<(), VmError> {
    if arrays.len() != vm.array_lens.len() {
        return Err(VmError::Runtime(format!(
            "buffer count mismatch: {} buffers for {} arrays",
            arrays.len(),
            vm.array_lens.len()
        )));
    }
    for (k, (a, &want)) in arrays.iter().zip(&vm.array_lens).enumerate() {
        if a.len() < want {
            return Err(VmError::Runtime(format!(
                "buffer {k} holds {} elements, program needs {want}",
                a.len()
            )));
        }
    }
    let ptrs: Vec<Ptr> = arrays
        .iter_mut()
        .map(|a| Ptr {
            p: a.as_mut_ptr(),
            len: a.len(),
        })
        .collect();
    let ctx = Ctx {
        vm,
        opts: VmOptions {
            threads: opts.threads.max(1),
            taskgraph: opts.taskgraph,
        },
        poisoned: AtomicBool::new(false),
        fail: Mutex::new(None),
    };
    let mut vars = vec![0i64; vm.n_vars.max(1)];
    let mut regs = vec![0.0f64; vm.max_regs.max(1)];
    let ok = ctx.exec(&vm.body, &ptrs, &mut vars, &mut regs, true);
    if ok && !ctx.poisoned.load(Ordering::Acquire) {
        Ok(())
    } else {
        let detail = ctx
            .fail
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| "run poisoned".to_string());
        Err(VmError::Runtime(detail))
    }
}

/// Inclusive-bound trip count as used by every loop dispatcher.
#[inline]
fn trips(lo: i64, hi: i64, step: i64) -> i64 {
    if hi < lo {
        0
    } else {
        (hi - lo) / step.max(1) + 1
    }
}

impl Ctx<'_> {
    /// Records the first failure and flips the poison flag.
    fn poison(&self, msg: String) -> bool {
        if !self.poisoned.swap(true, Ordering::AcqRel) {
            let mut g = self.fail.lock().unwrap_or_else(|e| e.into_inner());
            *g = Some(msg);
        }
        false
    }

    fn runtime_failed(&self, what: &str, e: RuntimeError) -> bool {
        self.poison(format!("runtime_error: vm {what} dispatch: {e}"))
    }

    /// Executes `node`; returns `false` once the run is poisoned. `par`
    /// is true only outside any parallel region.
    fn exec(
        &self,
        node: &CNode,
        arrs: &[Ptr],
        vars: &mut Vec<i64>,
        regs: &mut Vec<f64>,
        par: bool,
    ) -> bool {
        match node {
            CNode::Seq(xs) => xs.iter().all(|x| self.exec(x, arrs, vars, regs, par)),
            CNode::Guard(gs, b) => {
                if gs.iter().all(|g| g.eval(vars) >= 0) {
                    self.exec(b, arrs, vars, regs, par)
                } else {
                    true
                }
            }
            CNode::Loop(l) => {
                if par && self.opts.threads > 1 {
                    match l.par {
                        Par::Doall => return self.par_doall(l, arrs, vars),
                        Par::Reduction if l.reduction_array.is_some() => {
                            return self.par_reduction(l, arrs, vars)
                        }
                        Par::Pipeline | Par::Wavefront if l.rect_grid => {
                            return self.par_grid(l, arrs, vars)
                        }
                        _ => {}
                    }
                }
                self.seq_loop(l, arrs, vars, regs, par)
            }
            CNode::Stmt(k) => match self.vm.stmts.get(*k as usize) {
                Some(s) => self.exec_stmt(s, arrs, vars, regs),
                None => self.poison(format!("runtime_error: vm stmt {k} out of table")),
            },
        }
    }

    fn seq_loop(
        &self,
        l: &CLoop,
        arrs: &[Ptr],
        vars: &mut Vec<i64>,
        regs: &mut Vec<f64>,
        par: bool,
    ) -> bool {
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let mut v = lo;
        while v <= hi {
            vars[l.var] = v;
            if !self.exec(&l.body, arrs, vars, regs, par) {
                return false;
            }
            v += l.step;
        }
        true
    }

    /// One parallel worker iteration: a private frame/register file over
    /// the shared buffers.
    fn worker_iter(&self, body: &CNode, arrs: &[Ptr], vars: &[i64], var: usize, value: i64) {
        if self.poisoned.load(Ordering::Acquire) {
            return;
        }
        let mut vars = vars.to_vec();
        let mut regs = vec![0.0f64; self.vm.max_regs.max(1)];
        vars[var] = value;
        self.exec(body, arrs, &mut vars, &mut regs, false);
    }

    fn par_doall(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let n = trips(lo, hi, l.step);
        let r = par_for(0, n, self.opts.threads, |t| {
            self.worker_iter(&l.body, arrs, vars, l.var, lo + t * l.step);
        });
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("doall", e),
        }
    }

    fn par_reduction(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let Some(acc) = l.reduction_array else {
            return self.poison("runtime_error: vm reduction without accumulator".to_string());
        };
        let Some(shared) = arrs.get(acc as usize).copied() else {
            return self.poison(format!("runtime_error: vm accumulator {acc} out of range"));
        };
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let n = trips(lo, hi, l.step);
        // Safety: within the reduction every write to the accumulator is
        // redirected to the worker-private buffer below; the shared
        // buffer is only merged into under `reduce_array`'s lock after
        // the workers join, so this exclusive view never races.
        let target = unsafe { std::slice::from_raw_parts_mut(shared.p, shared.len) };
        let r = reduce_array(target, 0, n, self.opts.threads, |t, local| {
            let mut redirected = arrs.to_vec();
            if let Some(slot) = redirected.get_mut(acc as usize) {
                *slot = Ptr {
                    p: local.as_mut_ptr(),
                    len: local.len(),
                };
            }
            self.worker_iter(&l.body, &redirected, vars, l.var, lo + t * l.step);
        });
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("reduction", e),
        }
    }

    fn par_grid(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let CNode::Loop(inner) = &l.body else {
            return self.poison("runtime_error: vm grid region lost its inner loop".to_string());
        };
        let olo = l.lo.eval_lower(vars);
        let ohi = l.hi.eval_upper(vars);
        let ilo = inner.lo.eval_lower(vars);
        let ihi = inner.hi.eval_upper(vars);
        let grid = GridSweep {
            i_lo: 0,
            i_hi: trips(olo, ohi, l.step),
            j_lo: 0,
            j_hi: trips(ilo, ihi, inner.step),
        };
        let body = |i: i64, j: i64| {
            if self.poisoned.load(Ordering::Acquire) {
                return;
            }
            let mut vars = vars.to_vec();
            let mut regs = vec![0.0f64; self.vm.max_regs.max(1)];
            vars[l.var] = olo + i * l.step;
            vars[inner.var] = ilo + j * inner.step;
            self.exec(&inner.body, arrs, &mut vars, &mut regs, false);
        };
        let r = match l.par {
            Par::Pipeline => pipeline_2d(grid, self.opts.threads, body),
            _ if self.opts.taskgraph => {
                taskgraph_2d(grid, self.opts.threads, &[(1, 0), (0, 1)], body)
            }
            _ => wavefront_2d(grid, self.opts.threads, body),
        };
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("grid", e),
        }
    }

    fn exec_stmt(&self, s: &CompiledStmt, arrs: &[Ptr], vars: &[i64], regs: &mut [f64]) -> bool {
        for instr in &s.code {
            match instr {
                Instr::Const { dst, val } => regs[*dst as usize] = *val,
                Instr::Iter { dst, aff } => regs[*dst as usize] = aff.eval(vars) as f64,
                Instr::Load { dst, array, addr } => {
                    let Some(a) = arrs.get(*array as usize) else {
                        return self.poison(format!(
                            "runtime_error: vm load from unknown array {array}"
                        ));
                    };
                    let off = addr.eval(vars);
                    if off < 0 || off as usize >= a.len {
                        return self.poison(format!(
                            "runtime_error: vm load offset {off} outside array {array} \
                             (len {})",
                            a.len
                        ));
                    }
                    regs[*dst as usize] = unsafe { *a.p.add(off as usize) };
                }
                Instr::Bin { op, dst, a, b } => {
                    regs[*dst as usize] = op.apply(regs[*a as usize], regs[*b as usize]);
                }
                Instr::Un { op, dst, a } => {
                    regs[*dst as usize] = op.apply(regs[*a as usize]);
                }
            }
        }
        let Some(a) = arrs.get(s.store_array as usize) else {
            return self.poison(format!(
                "runtime_error: vm store to unknown array {}",
                s.store_array
            ));
        };
        let off = s.store_addr.eval(vars);
        if off < 0 || off as usize >= a.len {
            return self.poison(format!(
                "runtime_error: vm store offset {off} outside array {} (len {})",
                s.store_array, a.len
            ));
        }
        unsafe { *a.p.add(off as usize) = regs[s.result as usize] };
        true
    }
}
