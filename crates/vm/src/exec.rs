//! Bytecode execution: a sequential tree-walk over pre-resolved
//! addresses, with parallel regions dispatched onto the persistent
//! worker pool through the same primitives the emitted kernels use
//! (`par_for` / `reduce_array` / `pipeline_2d` / `wavefront_2d` /
//! `taskgraph_2d`), inheriting their panic containment and poison
//! protocol.
//!
//! Every array access is bounds-checked by default; a bad address
//! poisons the run (first failure wins) instead of corrupting the host
//! process — the in-process analogue of the subprocess backend's
//! `runtime_error:` + exit path. [`VmOptions::elide`] switches the
//! dispatch loop to the proof-carrying fast path: accesses a passing
//! bytecode certificate proved in-bounds skip the dynamic check, and
//! the register/array/variable-frame re-checks already discharged by
//! `VmProgram::validate` at entry become debug assertions. Nested
//! parallel annotations execute sequentially inside a worker, matching
//! the emitted kernels, which parallelize each region at its outermost
//! annotation only.

use crate::lower::{CLoop, CNode, CompiledStmt, Instr, VmProgram};
use crate::VmError;
use polymix_ast::tree::Par;
use polymix_runtime::{
    par_for, pipeline_2d, reduce_array, taskgraph_2d, wavefront_2d, GridSweep, RuntimeError,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Execution knobs for one run.
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Worker count for parallel regions (1 = fully sequential).
    pub threads: usize,
    /// Dispatch `wavefront` loops through the dynamic counter-graph
    /// runtime instead of diagonal barriers.
    pub taskgraph: bool,
    /// Trust the static proofs: skip the dynamic bounds check on
    /// accesses a passing [`crate::certify`] certificate proved
    /// in-bounds (`proven` flags), and demote the structural
    /// register/array/variable-frame re-checks that
    /// [`crate::lower::VmProgram::validate`] already discharged at
    /// entry to debug assertions. Off by default, and differential
    /// runs keep it off so every dynamic check stays the safety net
    /// being compared against; only the certified measurement hot path
    /// turns it on.
    pub elide: bool,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            threads: 1,
            taskgraph: false,
            elide: false,
        }
    }
}

/// Shared raw view of one array buffer. Workers only ever touch
/// disjoint elements (guaranteed by the certified parallel
/// annotations), mirroring the `P(*mut f64)` wrapper of emitted
/// kernels.
#[derive(Clone, Copy)]
struct Ptr {
    p: *mut f64,
    len: usize,
}

unsafe impl Send for Ptr {}
unsafe impl Sync for Ptr {}

struct Ctx<'a> {
    vm: &'a VmProgram,
    opts: VmOptions,
    poisoned: AtomicBool,
    fail: Mutex<Option<String>>,
}

/// Executes a lowered program over the given buffers, sequentially.
pub fn run(vm: &VmProgram, arrays: &mut [Vec<f64>]) -> Result<(), VmError> {
    run_opts(vm, arrays, VmOptions::default())
}

/// Executes a lowered program with explicit [`VmOptions`].
pub fn run_opts(
    vm: &VmProgram,
    arrays: &mut [Vec<f64>],
    opts: VmOptions,
) -> Result<(), VmError> {
    // One structural validation at entry (statement table, array ids,
    // registers, loop variables); the per-instruction table checks in
    // the hot loop below are debug assertions only.
    vm.validate()
        .map_err(|d| VmError::Runtime(format!("vm invalid program: {d}")))?;
    if arrays.len() != vm.array_lens.len() {
        return Err(VmError::Runtime(format!(
            "buffer count mismatch: {} buffers for {} arrays",
            arrays.len(),
            vm.array_lens.len()
        )));
    }
    for (k, (a, &want)) in arrays.iter().zip(&vm.array_lens).enumerate() {
        if a.len() < want {
            return Err(VmError::Runtime(format!(
                "buffer {k} holds {} elements, program needs {want}",
                a.len()
            )));
        }
    }
    let ptrs: Vec<Ptr> = arrays
        .iter_mut()
        .map(|a| Ptr {
            p: a.as_mut_ptr(),
            len: a.len(),
        })
        .collect();
    let ctx = Ctx {
        vm,
        opts: VmOptions {
            threads: opts.threads.max(1),
            ..opts
        },
        poisoned: AtomicBool::new(false),
        fail: Mutex::new(None),
    };
    let mut vars = vec![0i64; vm.n_vars.max(1)];
    let mut regs = vec![0.0f64; vm.max_regs.max(1)];
    let ok = ctx.exec(&vm.body, &ptrs, &mut vars, &mut regs, true);
    if ok && !ctx.poisoned.load(Ordering::Acquire) {
        Ok(())
    } else {
        let detail = ctx
            .fail
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| "run poisoned".to_string());
        Err(VmError::Runtime(detail))
    }
}

/// Inclusive-bound trip count as used by every loop dispatcher.
#[inline]
fn trips(lo: i64, hi: i64, step: i64) -> i64 {
    if hi < lo {
        0
    } else {
        (hi - lo) / step.max(1) + 1
    }
}

impl Ctx<'_> {
    /// Records the first failure and flips the poison flag.
    fn poison(&self, msg: String) -> bool {
        if !self.poisoned.swap(true, Ordering::AcqRel) {
            let mut g = self.fail.lock().unwrap_or_else(|e| e.into_inner());
            *g = Some(msg);
        }
        false
    }

    fn runtime_failed(&self, what: &str, e: RuntimeError) -> bool {
        self.poison(format!("runtime_error: vm {what} dispatch: {e}"))
    }

    /// Executes `node`; returns `false` once the run is poisoned. `par`
    /// is true only outside any parallel region.
    fn exec(
        &self,
        node: &CNode,
        arrs: &[Ptr],
        vars: &mut Vec<i64>,
        regs: &mut Vec<f64>,
        par: bool,
    ) -> bool {
        match node {
            CNode::Seq(xs) => xs.iter().all(|x| self.exec(x, arrs, vars, regs, par)),
            CNode::Guard(gs, b) => {
                if gs.iter().all(|g| g.eval(vars) >= 0) {
                    self.exec(b, arrs, vars, regs, par)
                } else {
                    true
                }
            }
            CNode::Loop(l) => {
                if par && self.opts.threads > 1 {
                    match l.par {
                        Par::Doall => return self.par_doall(l, arrs, vars),
                        Par::Reduction if l.reduction_array.is_some() => {
                            return self.par_reduction(l, arrs, vars)
                        }
                        Par::Pipeline | Par::Wavefront if l.rect_grid => {
                            return self.par_grid(l, arrs, vars)
                        }
                        _ => {}
                    }
                }
                self.seq_loop(l, arrs, vars, regs, par)
            }
            CNode::Stmt(k) => {
                // In range by `VmProgram::validate` at entry.
                debug_assert!((*k as usize) < self.vm.stmts.len(), "vm stmt {k} out of table");
                self.exec_stmt(&self.vm.stmts[*k as usize], arrs, vars, regs)
            }
        }
    }

    fn seq_loop(
        &self,
        l: &CLoop,
        arrs: &[Ptr],
        vars: &mut Vec<i64>,
        regs: &mut Vec<f64>,
        par: bool,
    ) -> bool {
        if self.opts.elide {
            if let CNode::Stmt(k) = &l.body {
                // In range by `VmProgram::validate` at entry.
                debug_assert!((*k as usize) < self.vm.stmts.len(), "vm stmt {k} out of table");
                let s = &self.vm.stmts[*k as usize];
                if all_proven(s) {
                    return self.seq_loop_elided(l, s, arrs, vars, regs);
                }
            }
        }
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let mut v = lo;
        while v <= hi {
            vars[l.var] = v;
            if !self.exec(&l.body, arrs, vars, regs, par) {
                return false;
            }
            v += l.step;
        }
        true
    }

    /// One parallel worker iteration: a private frame/register file over
    /// the shared buffers.
    fn worker_iter(&self, body: &CNode, arrs: &[Ptr], vars: &[i64], var: usize, value: i64) {
        if self.poisoned.load(Ordering::Acquire) {
            return;
        }
        let mut vars = vars.to_vec();
        let mut regs = vec![0.0f64; self.vm.max_regs.max(1)];
        vars[var] = value;
        self.exec(body, arrs, &mut vars, &mut regs, false);
    }

    fn par_doall(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let n = trips(lo, hi, l.step);
        let r = par_for(0, n, self.opts.threads, |t| {
            self.worker_iter(&l.body, arrs, vars, l.var, lo + t * l.step);
        });
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("doall", e),
        }
    }

    fn par_reduction(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let Some(acc) = l.reduction_array else {
            return self.poison("runtime_error: vm reduction without accumulator".to_string());
        };
        let Some(shared) = arrs.get(acc as usize).copied() else {
            return self.poison(format!("runtime_error: vm accumulator {acc} out of range"));
        };
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        let n = trips(lo, hi, l.step);
        // Safety: within the reduction every write to the accumulator is
        // redirected to the worker-private buffer below; the shared
        // buffer is only merged into under `reduce_array`'s lock after
        // the workers join, so this exclusive view never races.
        let target = unsafe { std::slice::from_raw_parts_mut(shared.p, shared.len) };
        let r = reduce_array(target, 0, n, self.opts.threads, |t, local| {
            let mut redirected = arrs.to_vec();
            if let Some(slot) = redirected.get_mut(acc as usize) {
                *slot = Ptr {
                    p: local.as_mut_ptr(),
                    len: local.len(),
                };
            }
            self.worker_iter(&l.body, &redirected, vars, l.var, lo + t * l.step);
        });
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("reduction", e),
        }
    }

    fn par_grid(&self, l: &CLoop, arrs: &[Ptr], vars: &[i64]) -> bool {
        let CNode::Loop(inner) = &l.body else {
            return self.poison("runtime_error: vm grid region lost its inner loop".to_string());
        };
        let olo = l.lo.eval_lower(vars);
        let ohi = l.hi.eval_upper(vars);
        let ilo = inner.lo.eval_lower(vars);
        let ihi = inner.hi.eval_upper(vars);
        let grid = GridSweep {
            i_lo: 0,
            i_hi: trips(olo, ohi, l.step),
            j_lo: 0,
            j_hi: trips(ilo, ihi, inner.step),
        };
        let body = |i: i64, j: i64| {
            if self.poisoned.load(Ordering::Acquire) {
                return;
            }
            let mut vars = vars.to_vec();
            let mut regs = vec![0.0f64; self.vm.max_regs.max(1)];
            vars[l.var] = olo + i * l.step;
            vars[inner.var] = ilo + j * inner.step;
            self.exec(&inner.body, arrs, &mut vars, &mut regs, false);
        };
        let r = match l.par {
            Par::Pipeline => pipeline_2d(grid, self.opts.threads, body),
            _ if self.opts.taskgraph => {
                taskgraph_2d(grid, self.opts.threads, &[(1, 0), (0, 1)], body)
            }
            _ => wavefront_2d(grid, self.opts.threads, body),
        };
        match r {
            Ok(_) => !self.poisoned.load(Ordering::Acquire),
            Err(e) => self.runtime_failed("grid", e),
        }
    }

    fn exec_stmt(&self, s: &CompiledStmt, arrs: &[Ptr], vars: &[i64], regs: &mut [f64]) -> bool {
        let elide = self.opts.elide;
        for instr in &s.code {
            match instr {
                Instr::Const { dst, val } => regs[*dst as usize] = *val,
                Instr::Iter { dst, aff } => regs[*dst as usize] = aff.eval(vars) as f64,
                Instr::Load {
                    dst,
                    array,
                    addr,
                    proven,
                } => {
                    // In range by `VmProgram::validate` at entry.
                    debug_assert!((*array as usize) < arrs.len(), "vm load array {array}");
                    let a = &arrs[*array as usize];
                    let off = addr.eval(vars);
                    if *proven && elide {
                        // Safety: `proven` is set only by a passing
                        // certificate whose polyhedron covers every
                        // executed frame, so `0 <= off < len` holds.
                        debug_assert!(off >= 0 && (off as usize) < a.len);
                    } else if off < 0 || off as usize >= a.len {
                        return self.poison(format!(
                            "runtime_error: vm load offset {off} outside array {array} \
                             (len {})",
                            a.len
                        ));
                    }
                    regs[*dst as usize] = unsafe { *a.p.add(off as usize) };
                }
                Instr::Bin { op, dst, a, b } => {
                    regs[*dst as usize] = op.apply(regs[*a as usize], regs[*b as usize]);
                }
                Instr::Un { op, dst, a } => {
                    regs[*dst as usize] = op.apply(regs[*a as usize]);
                }
            }
        }
        // In range by `VmProgram::validate` at entry.
        debug_assert!((s.store_array as usize) < arrs.len(), "vm store array");
        let a = &arrs[s.store_array as usize];
        let off = s.store_addr.eval(vars);
        if s.store_proven && elide {
            // Safety: same certificate contract as the load fast path.
            debug_assert!(off >= 0 && (off as usize) < a.len);
        } else if off < 0 || off as usize >= a.len {
            return self.poison(format!(
                "runtime_error: vm store offset {off} outside array {} (len {})",
                s.store_array, a.len
            ));
        }
        unsafe { *a.p.add(off as usize) = regs[s.result as usize] };
        true
    }

    /// Proof-carrying inner-loop fast path. Eligible when elision is on,
    /// the loop body is directly one statement, and *every* access of
    /// that statement is certificate-proven: the certificate's context
    /// polyhedron covers the whole loop extent, so the full linear
    /// address progression of the loop is known in-bounds up front and
    /// the interpreter may strength-reduce — evaluate each affine
    /// address/iterator once at the first iteration and advance it by
    /// its loop-variable coefficient per step — executing the loop with
    /// no per-access validation at all. Checked mode never takes this
    /// path: each address is re-derived and re-validated individually,
    /// which is exactly the safety net differential runs compare
    /// against.
    fn seq_loop_elided(
        &self,
        l: &CLoop,
        s: &CompiledStmt,
        arrs: &[Ptr],
        vars: &mut [i64],
        regs: &mut [f64],
    ) -> bool {
        let lo = l.lo.eval_lower(vars);
        let hi = l.hi.eval_upper(vars);
        if hi < lo {
            return true;
        }
        let n = trips(lo, hi, l.step);
        vars[l.var] = lo;
        // Per-instruction state: current integer value (address or
        // iterator) and its per-step delta. Offsets index `s.code`;
        // usize::MAX marks the store.
        // Sum rather than find: lowering merges duplicate terms, but
        // hand-built bytecode need not be canonical.
        let coeff = |aff: &crate::lower::AffExpr| -> i64 {
            aff.terms
                .iter()
                .filter(|&&(v, _)| v as usize == l.var)
                .map(|&(_, k)| k)
                .sum::<i64>()
                * l.step
        };
        let mut cur: Vec<(i64, i64)> = s
            .code
            .iter()
            .map(|i| match i {
                Instr::Iter { aff, .. } => (aff.eval(vars), coeff(aff)),
                Instr::Load { addr, .. } => (addr.eval(vars), coeff(addr)),
                _ => (0, 0),
            })
            .collect();
        let mut store = (s.store_addr.eval(vars), coeff(&s.store_addr));
        for t in 0..n {
            for (instr, c) in s.code.iter().zip(cur.iter_mut()) {
                match instr {
                    Instr::Const { dst, val } => regs[*dst as usize] = *val,
                    Instr::Iter { dst, .. } => regs[*dst as usize] = c.0 as f64,
                    Instr::Load { dst, array, .. } => {
                        let a = &arrs[*array as usize];
                        // Safety: the certificate proved this access
                        // in-bounds over the loop's whole context
                        // polyhedron, which contains every `t`.
                        debug_assert!(c.0 >= 0 && (c.0 as usize) < a.len);
                        regs[*dst as usize] = unsafe { *a.p.add(c.0 as usize) };
                    }
                    Instr::Bin { op, dst, a, b } => {
                        regs[*dst as usize] = op.apply(regs[*a as usize], regs[*b as usize]);
                    }
                    Instr::Un { op, dst, a } => {
                        regs[*dst as usize] = op.apply(regs[*a as usize]);
                    }
                }
                c.0 += c.1;
            }
            let a = &arrs[s.store_array as usize];
            // Safety: same certificate contract as the loads.
            debug_assert!(store.0 >= 0 && (store.0 as usize) < a.len);
            unsafe { *a.p.add(store.0 as usize) = regs[s.result as usize] };
            store.0 += store.1;
            let _ = t;
        }
        // Leave the frame exactly as the generic loop would: the last
        // executed value of the loop variable.
        vars[l.var] = lo + (n - 1) * l.step;
        true
    }
}

/// True when every access of the statement carries a certificate proof,
/// making it eligible for the elided inner-loop fast path.
fn all_proven(s: &CompiledStmt) -> bool {
    s.store_proven
        && s.code.iter().all(|i| match i {
            Instr::Load { proven, .. } => *proven,
            _ => true,
        })
}
