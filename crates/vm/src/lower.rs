//! Lowering: loop tree → register bytecode with pre-resolved addresses.
//!
//! The lowering runs once per (program, parameter vector) and folds every
//! piece of arithmetic that is constant for the whole run:
//!
//! * **Parameters** disappear. Every [`LinExpr`] over (vars, params) is
//!   folded into an [`AffExpr`] over loop variables only; `Expr::Param`
//!   leaves become immediate constants.
//! * **Subscripts** are pre-composed. An access `A[r_0(it)][r_1(it)]`
//!   whose original iterators `it` are themselves affine in the AST loop
//!   variables (the materialized inverse schedule on each statement
//!   site) collapses into a single affine *address* over the loop
//!   variables, with the row-major strides of `A`'s concrete extents
//!   multiplied through. At run time an access is one dot product, one
//!   bounds check, one load/store.
//! * **Statement bodies** become straight-line register code
//!   ([`Instr`]), one program per statement *site* (distinct sites of
//!   one statement can carry different inverse schedules, so they get
//!   distinct address code).
//!
//! Anything outside the model (rank mismatches, unknown variables,
//! non-positive steps) is a [`VmError::Lower`] — the lowering never
//! panics, mirroring the no-abort contract of the compile pipeline.

use crate::VmError;
use polymix_ast::tree::{Bound, LinExpr, Node, Par, Program};
use polymix_ir::expr::{BinOp, Expr, UnOp};
use polymix_ir::Scop;

/// Affine expression over AST loop variables: `Σ c_v·var + c`. Parameter
/// contributions were folded into `c` at lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffExpr {
    /// Sparse `(variable id, coefficient)` terms.
    pub terms: Vec<(u32, i64)>,
    /// Constant term (includes folded parameters).
    pub c: i64,
}

impl AffExpr {
    /// Evaluates against the loop-variable frame.
    #[inline]
    pub fn eval(&self, vars: &[i64]) -> i64 {
        let mut acc = self.c;
        for &(v, k) in &self.terms {
            acc += k * vars[v as usize];
        }
        acc
    }

    /// True when the expression mentions variable `v`.
    pub fn uses_var(&self, v: usize) -> bool {
        self.terms.iter().any(|&(x, _)| x as usize == v)
    }

    fn from_lin(e: &LinExpr, params: &[i64], n_vars: usize) -> Result<AffExpr, VmError> {
        let mut c = e.c;
        for &(p, k) in &e.param_coeffs {
            let val = params
                .get(p)
                .ok_or_else(|| VmError::Lower(format!("parameter {p} out of range")))?;
            c += k * val;
        }
        let mut terms = Vec::with_capacity(e.var_coeffs.len());
        for &(v, k) in &e.var_coeffs {
            if v >= n_vars {
                return Err(VmError::Lower(format!("loop variable {v} out of range")));
            }
            if k != 0 {
                terms.push((v as u32, k));
            }
        }
        Ok(AffExpr { terms, c })
    }

    /// `self += k · other`, merging terms.
    fn add_scaled(&mut self, other: &AffExpr, k: i64) {
        self.c += k * other.c;
        for &(v, c) in &other.terms {
            match self.terms.iter_mut().find(|(x, _)| *x == v) {
                Some((_, acc)) => *acc += k * c,
                None => self.terms.push((v, k * c)),
            }
        }
        self.terms.retain(|&(_, c)| c != 0);
    }
}

/// Compiled loop bound: `max` (lower) / `min` (upper) over
/// `expr / denom` with ceiling / floor division — the exact semantics of
/// [`Bound::eval_lower`] / [`Bound::eval_upper`].
#[derive(Clone, Debug)]
pub struct CBound {
    /// `(expression, positive denominator)` terms. Public so the
    /// certifier can encode bounds as polyhedron rows and adversarial
    /// tests can corrupt them.
    pub exprs: Vec<(AffExpr, i64)>,
}

impl CBound {
    fn from_bound(b: &Bound, params: &[i64], n_vars: usize) -> Result<CBound, VmError> {
        if b.exprs.is_empty() {
            return Err(VmError::Lower("empty loop bound".to_string()));
        }
        let mut exprs = Vec::with_capacity(b.exprs.len());
        for be in &b.exprs {
            if be.denom <= 0 {
                return Err(VmError::Lower(format!(
                    "non-positive bound denominator {}",
                    be.denom
                )));
            }
            exprs.push((AffExpr::from_lin(&be.expr, params, n_vars)?, be.denom));
        }
        Ok(CBound { exprs })
    }

    /// `max` of ceiling divisions; `i64::MAX` is unreachable because the
    /// expression list is never empty by construction.
    #[inline]
    pub fn eval_lower(&self, vars: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|(e, d)| {
                let v = e.eval(vars);
                -((-v).div_euclid(*d))
            })
            .max()
            .unwrap_or(i64::MAX)
    }

    /// `min` of floor divisions.
    #[inline]
    pub fn eval_upper(&self, vars: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|(e, d)| e.eval(vars).div_euclid(*d))
            .min()
            .unwrap_or(i64::MIN)
    }

    fn uses_var(&self, v: usize) -> bool {
        self.exprs.iter().any(|(e, _)| e.uses_var(v))
    }
}

/// One register instruction of a compiled statement body.
#[derive(Clone, Debug)]
pub enum Instr {
    /// `r[dst] = val` (constants and folded parameters).
    Const { dst: u16, val: f64 },
    /// `r[dst] = aff(vars) as f64` — an original-iterator value through
    /// the site's inverse schedule.
    Iter { dst: u16, aff: AffExpr },
    /// `r[dst] = arrays[array][aff(vars)]`. `proven` is false out of
    /// lowering; only [`crate::certify::VmCertificate::apply`] flips it,
    /// after a static in-bounds proof, and only then may the executor
    /// skip the dynamic bounds check (see [`crate::VmOptions::elide`]).
    Load {
        dst: u16,
        array: u32,
        addr: AffExpr,
        proven: bool,
    },
    /// `r[dst] = op(r[a], r[b])`.
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// `r[dst] = op(r[a])`.
    Un { op: UnOp, dst: u16, a: u16 },
}

/// Straight-line register program for one statement site, plus the
/// pre-resolved store address.
#[derive(Clone, Debug)]
pub struct CompiledStmt {
    /// Body instructions in evaluation order.
    pub code: Vec<Instr>,
    /// Register holding the final right-hand-side value.
    pub result: u16,
    /// Array written by the statement.
    pub store_array: u32,
    /// Pre-resolved store address over the loop variables.
    pub store_addr: AffExpr,
    /// Statically proven in-bounds (set only by a passing certificate;
    /// same contract as [`Instr::Load::proven`]).
    pub store_proven: bool,
    /// Registers used by `code`.
    pub n_regs: usize,
}

/// Control node of the compiled program.
#[derive(Clone, Debug)]
pub enum CNode {
    /// Children in textual order.
    Seq(Vec<CNode>),
    /// A (possibly parallel) counted loop.
    Loop(Box<CLoop>),
    /// Body runs iff every expression is `>= 0`.
    Guard(Vec<AffExpr>, Box<CNode>),
    /// Index into [`VmProgram::stmts`].
    Stmt(u32),
}

/// A compiled loop with its parallel-dispatch metadata.
#[derive(Clone, Debug)]
pub struct CLoop {
    /// Loop variable id (slot in the variable frame).
    pub var: usize,
    /// Compiled lower bound.
    pub lo: CBound,
    /// Compiled (inclusive) upper bound.
    pub hi: CBound,
    /// Positive stride.
    pub step: i64,
    /// Parallel annotation carried over from the AST.
    pub par: Par,
    /// For a `Reduction` loop: the accumulator array, when every
    /// statement site under the loop is an *additive* self-update of
    /// that one array (the shape [`reduce_array`]'s zero-init +
    /// additive-merge privatization is exact for). `None` demotes the
    /// dispatch to sequential.
    ///
    /// [`reduce_array`]: polymix_runtime::reduce_array
    pub reduction_array: Option<u32>,
    /// For `Pipeline`/`Wavefront`: true when the body is directly a
    /// nested loop whose bounds are invariant in this loop's variable —
    /// the rectangular 2-level shape the grid primitives accept.
    pub rect_grid: bool,
    /// Loop body.
    pub body: CNode,
}

/// Measurement knobs the bytecode backend cannot model: they change the
/// emitted-Rust artifact (and therefore rustc-backend cells) but leave
/// the lowered bytecode byte-for-byte identical. A vm screening cell is
/// blind to them, which is why the autotuner's rustc-confirm union is
/// load-bearing (DESIGN.md §12).
///
/// * `vect` — the explicit-SIMD emission post-pass; the interpreter has
///   no vector ISA.
/// * `pipeline_batch` / `dyn_grain` — runtime dispatch granularity of
///   the emitted kernels; [`crate::VmOptions`] carries no equivalent.
/// * `unroll` — unrolling is structural (the vm executes the unrolled
///   tree), but its *payoff* is LLVM back-end vectorization of the
///   emitted source, which the interpreter cannot reproduce.
pub const UNMODELED_KNOBS: &[&str] = &["vect", "pipeline_batch", "dyn_grain", "unroll"];

/// A lowered program: bytecode statement table plus compiled control
/// tree, specialized to one parameter vector.
#[derive(Clone, Debug)]
pub struct VmProgram {
    /// Loop-variable frame size.
    pub n_vars: usize,
    /// Maximum register count over all compiled statements.
    pub max_regs: usize,
    /// Concrete element count per array (row-major).
    pub array_lens: Vec<usize>,
    /// Compiled statement sites.
    pub stmts: Vec<CompiledStmt>,
    /// Compiled control tree.
    pub body: CNode,
    /// Knobs this backend is blind to (always [`UNMODELED_KNOBS`] for a
    /// lowered program; carried on the program so sweep cells can be
    /// tagged without reaching back into the crate).
    pub unmodeled_knobs: &'static [&'static str],
}

impl VmProgram {
    /// Structural validity: every statement reference, array id,
    /// register and loop variable is inside its table. [`lower`]
    /// guarantees this by construction; [`crate::run_opts`] re-checks
    /// once at entry so hand-built programs cannot index out of the
    /// interpreter's tables, and the per-instruction checks in the hot
    /// loop are debug assertions only.
    pub fn validate(&self) -> Result<(), String> {
        let n_arrays = self.array_lens.len();
        for (k, s) in self.stmts.iter().enumerate() {
            if s.store_array as usize >= n_arrays {
                return Err(format!("stmt {k}: store array {} out of range", s.store_array));
            }
            if s.result as usize >= self.max_regs {
                return Err(format!("stmt {k}: result register {} out of file", s.result));
            }
            self.check_aff(&s.store_addr)
                .map_err(|e| format!("stmt {k} store address: {e}"))?;
            for (pos, i) in s.code.iter().enumerate() {
                let reg = |r: u16| -> Result<(), String> {
                    if r as usize >= self.max_regs {
                        return Err(format!("stmt {k} instr {pos}: register {r} out of file"));
                    }
                    Ok(())
                };
                match i {
                    Instr::Const { dst, .. } => reg(*dst)?,
                    Instr::Iter { dst, aff } => {
                        reg(*dst)?;
                        self.check_aff(aff)
                            .map_err(|e| format!("stmt {k} instr {pos}: {e}"))?;
                    }
                    Instr::Load { dst, array, addr, .. } => {
                        reg(*dst)?;
                        if *array as usize >= n_arrays {
                            return Err(format!(
                                "stmt {k} instr {pos}: load array {array} out of range"
                            ));
                        }
                        self.check_aff(addr)
                            .map_err(|e| format!("stmt {k} instr {pos}: {e}"))?;
                    }
                    Instr::Bin { dst, a, b, .. } => {
                        reg(*dst)?;
                        reg(*a)?;
                        reg(*b)?;
                    }
                    Instr::Un { dst, a, .. } => {
                        reg(*dst)?;
                        reg(*a)?;
                    }
                }
            }
        }
        self.check_node(&self.body)
    }

    fn check_aff(&self, e: &AffExpr) -> Result<(), String> {
        for &(v, _) in &e.terms {
            if v as usize >= self.n_vars {
                return Err(format!("variable {v} out of frame"));
            }
        }
        Ok(())
    }

    fn check_bound(&self, b: &CBound) -> Result<(), String> {
        if b.exprs.is_empty() {
            return Err("empty bound".to_string());
        }
        for (e, d) in &b.exprs {
            if *d <= 0 {
                return Err(format!("non-positive bound denominator {d}"));
            }
            self.check_aff(e)?;
        }
        Ok(())
    }

    fn check_node(&self, n: &CNode) -> Result<(), String> {
        match n {
            CNode::Seq(xs) => xs.iter().try_for_each(|x| self.check_node(x)),
            CNode::Guard(gs, b) => {
                for g in gs {
                    self.check_aff(g)?;
                }
                self.check_node(b)
            }
            CNode::Loop(l) => {
                if l.var >= self.n_vars {
                    return Err(format!("loop variable {} out of frame", l.var));
                }
                if l.step <= 0 {
                    return Err(format!("loop has non-positive step {}", l.step));
                }
                self.check_bound(&l.lo)?;
                self.check_bound(&l.hi)?;
                if let Some(acc) = l.reduction_array {
                    if acc as usize >= self.array_lens.len() {
                        return Err(format!("reduction accumulator {acc} out of range"));
                    }
                }
                self.check_node(&l.body)
            }
            CNode::Stmt(k) => {
                if *k as usize >= self.stmts.len() {
                    return Err(format!("stmt {k} out of table"));
                }
                Ok(())
            }
        }
    }
}

struct Lowerer<'a> {
    scop: &'a Scop,
    params: &'a [i64],
    n_vars: usize,
    extents: Vec<Vec<i64>>,
    strides: Vec<Vec<i64>>,
    stmts: Vec<CompiledStmt>,
}

/// Lowers a transformed program to bytecode at concrete parameter
/// values. The result executes with the exact semantics of
/// [`polymix_ast::interp::execute`] over the same buffers.
pub fn lower(prog: &Program, params: &[i64]) -> Result<VmProgram, VmError> {
    if params.len() != prog.scop.params.len() {
        return Err(VmError::Lower(format!(
            "parameter arity mismatch: {} values for {} parameters",
            params.len(),
            prog.scop.params.len()
        )));
    }
    let extents: Vec<Vec<i64>> = prog
        .scop
        .arrays
        .iter()
        .map(|a| a.extents(params))
        .collect();
    for (a, ext) in prog.scop.arrays.iter().zip(&extents) {
        if ext.iter().any(|&e| e <= 0) {
            return Err(VmError::Lower(format!(
                "array `{}` has a non-positive extent at these parameters",
                a.name
            )));
        }
    }
    // Row-major strides: stride[d] = Π extents[d+1..].
    let strides: Vec<Vec<i64>> = extents
        .iter()
        .map(|ext| {
            let mut s = vec![1i64; ext.len()];
            for d in (0..ext.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * ext[d + 1];
            }
            s
        })
        .collect();
    let mut lw = Lowerer {
        scop: &prog.scop,
        params,
        n_vars: prog.n_vars.max(1),
        extents,
        strides,
        stmts: Vec::new(),
    };
    let body = lw.node(&prog.body)?;
    let max_regs = lw.stmts.iter().map(|s| s.n_regs).max().unwrap_or(0).max(1);
    let vm = VmProgram {
        n_vars: lw.n_vars,
        max_regs,
        array_lens: lw
            .extents
            .iter()
            .map(|ext| ext.iter().product::<i64>().max(1) as usize)
            .collect(),
        stmts: lw.stmts,
        body,
        unmodeled_knobs: UNMODELED_KNOBS,
    };
    // Structural validity is established here, once, instead of being
    // re-discovered access-by-access inside the execution hot loop.
    vm.validate().map_err(VmError::Lower)?;
    Ok(vm)
}

impl Lowerer<'_> {
    fn node(&mut self, n: &Node) -> Result<CNode, VmError> {
        match n {
            Node::Seq(xs) => Ok(CNode::Seq(
                xs.iter().map(|x| self.node(x)).collect::<Result<_, _>>()?,
            )),
            Node::Guard(gs, b) => {
                let exprs = gs
                    .iter()
                    .map(|g| AffExpr::from_lin(g, self.params, self.n_vars))
                    .collect::<Result<_, _>>()?;
                Ok(CNode::Guard(exprs, Box::new(self.node(b)?)))
            }
            Node::Loop(l) => {
                if l.step <= 0 {
                    return Err(VmError::Lower(format!(
                        "loop `{}` has non-positive step {}",
                        l.name, l.step
                    )));
                }
                if l.var >= self.n_vars {
                    return Err(VmError::Lower(format!(
                        "loop `{}` variable {} out of frame",
                        l.name, l.var
                    )));
                }
                let lo = CBound::from_bound(&l.lo, self.params, self.n_vars)?;
                let hi = CBound::from_bound(&l.hi, self.params, self.n_vars)?;
                let body = self.node(&l.body)?;
                let reduction_array = if l.par == Par::Reduction {
                    self.additive_reduction_array(&body)
                } else {
                    None
                };
                let rect_grid = matches!(l.par, Par::Pipeline | Par::Wavefront)
                    && matches!(&body, CNode::Loop(inner)
                        if !inner.lo.uses_var(l.var) && !inner.hi.uses_var(l.var));
                Ok(CNode::Loop(Box::new(CLoop {
                    var: l.var,
                    lo,
                    hi,
                    step: l.step,
                    par: l.par,
                    reduction_array,
                    rect_grid,
                    body,
                })))
            }
            Node::Stmt(s) => {
                let stmt = self.scop.statements.get(s.stmt_idx).ok_or_else(|| {
                    VmError::Lower(format!("statement index {} out of range", s.stmt_idx))
                })?;
                if s.iter_exprs.len() != stmt.dim {
                    return Err(VmError::Lower(format!(
                        "site of `{}` carries {} iterator expressions for dim {}",
                        stmt.name,
                        s.iter_exprs.len(),
                        stmt.dim
                    )));
                }
                let iters: Vec<AffExpr> = s
                    .iter_exprs
                    .iter()
                    .map(|e| AffExpr::from_lin(e, self.params, self.n_vars))
                    .collect::<Result<_, _>>()?;
                let mut code = Vec::new();
                let mut next: u16 = 0;
                let result =
                    self.compile_expr(&stmt.body, &iters, &mut code, &mut next)?;
                let store_addr =
                    self.address(stmt.write.array.0, &stmt.write.map, &iters)?;
                if self.stmts.len() >= u32::MAX as usize {
                    return Err(VmError::Lower("statement table overflow".to_string()));
                }
                let idx = self.stmts.len() as u32;
                self.stmts.push(CompiledStmt {
                    code,
                    result,
                    store_array: stmt.write.array.0 as u32,
                    store_addr,
                    store_proven: false,
                    n_regs: next as usize,
                });
                Ok(CNode::Stmt(idx))
            }
        }
    }

    /// Pre-composes subscript rows with the site's inverse schedule and
    /// the array's row-major strides into one address expression.
    fn address(
        &self,
        array: usize,
        rows: &[Vec<i64>],
        iters: &[AffExpr],
    ) -> Result<AffExpr, VmError> {
        let (ext, strides) = self
            .extents
            .get(array)
            .zip(self.strides.get(array))
            .ok_or_else(|| VmError::Lower(format!("array {array} out of range")))?;
        if rows.len() != ext.len() {
            return Err(VmError::Lower(format!(
                "array {array}: {} subscript rows for rank {}",
                rows.len(),
                ext.len()
            )));
        }
        let np = self.params.len();
        let mut addr = AffExpr {
            terms: Vec::new(),
            c: 0,
        };
        for (dim, row) in rows.iter().enumerate() {
            if row.len() != iters.len() + np + 1 {
                return Err(VmError::Lower(format!(
                    "array {array} dim {dim}: subscript row width {} (expected {})",
                    row.len(),
                    iters.len() + np + 1
                )));
            }
            let mut idx = AffExpr {
                terms: Vec::new(),
                c: row[iters.len() + np],
            };
            for (k, it) in iters.iter().enumerate() {
                if row[k] != 0 {
                    idx.add_scaled(it, row[k]);
                }
            }
            for (p, &c) in row[iters.len()..iters.len() + np].iter().enumerate() {
                idx.c += c * self.params[p];
            }
            addr.add_scaled(&idx, strides[dim]);
        }
        Ok(addr)
    }

    fn compile_expr(
        &self,
        e: &Expr,
        iters: &[AffExpr],
        code: &mut Vec<Instr>,
        next: &mut u16,
    ) -> Result<u16, VmError> {
        let alloc = |next: &mut u16| -> Result<u16, VmError> {
            let r = *next;
            *next = next
                .checked_add(1)
                .ok_or_else(|| VmError::Lower("register file overflow".to_string()))?;
            Ok(r)
        };
        match e {
            Expr::Const(c) => {
                let dst = alloc(next)?;
                code.push(Instr::Const { dst, val: *c });
                Ok(dst)
            }
            Expr::Param(k) => {
                let val = self
                    .params
                    .get(*k)
                    .copied()
                    .ok_or_else(|| VmError::Lower(format!("parameter {k} out of range")))?;
                let dst = alloc(next)?;
                code.push(Instr::Const {
                    dst,
                    val: val as f64,
                });
                Ok(dst)
            }
            Expr::Iter(k) => {
                let aff = iters
                    .get(*k)
                    .cloned()
                    .ok_or_else(|| VmError::Lower(format!("iterator {k} out of range")))?;
                let dst = alloc(next)?;
                code.push(Instr::Iter { dst, aff });
                Ok(dst)
            }
            Expr::Read { array, subs } => {
                let addr = self.address(array.0, subs, iters)?;
                let dst = alloc(next)?;
                code.push(Instr::Load {
                    dst,
                    array: array.0 as u32,
                    addr,
                    proven: false,
                });
                Ok(dst)
            }
            Expr::Bin(op, a, b) => {
                let ra = self.compile_expr(a, iters, code, next)?;
                let rb = self.compile_expr(b, iters, code, next)?;
                let dst = alloc(next)?;
                code.push(Instr::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                Ok(dst)
            }
            Expr::Un(op, a) => {
                let ra = self.compile_expr(a, iters, code, next)?;
                let dst = alloc(next)?;
                code.push(Instr::Un {
                    op: *op,
                    dst,
                    a: ra,
                });
                Ok(dst)
            }
        }
    }

    /// The single array every statement site under `node` additively
    /// self-updates without reading elsewhere — the shape whose
    /// privatization under zero-init + additive merge is exact.
    fn additive_reduction_array(&self, node: &CNode) -> Option<u32> {
        let mut sites = Vec::new();
        collect_stmts(node, &mut sites);
        let mut target: Option<u32> = None;
        for idx in sites {
            let cs = self.stmts.get(idx as usize)?;
            let arr = cs.store_array;
            if *target.get_or_insert(arr) != arr {
                return None;
            }
            // The RHS must be `load(self-cell) + e` (either operand
            // order) with no other read of the accumulator array.
            let Some(Instr::Bin {
                op: BinOp::Add,
                a,
                b,
                ..
            }) = cs.code.last()
            else {
                return None;
            };
            let self_load = |r: u16| {
                cs.code.iter().any(|i| matches!(i, Instr::Load { dst, array, addr, .. }
                    if *dst == r && *array == arr && *addr == cs.store_addr))
            };
            if !self_load(*a) && !self_load(*b) {
                return None;
            }
            let acc_loads = cs
                .code
                .iter()
                .filter(|i| matches!(i, Instr::Load { array, .. } if *array == arr))
                .count();
            if acc_loads != 1 {
                return None;
            }
        }
        target
    }
}

fn collect_stmts(node: &CNode, out: &mut Vec<u32>) {
    match node {
        CNode::Seq(xs) => xs.iter().for_each(|x| collect_stmts(x, out)),
        CNode::Loop(l) => collect_stmts(&l.body, out),
        CNode::Guard(_, b) => collect_stmts(b, out),
        CNode::Stmt(k) => out.push(*k),
    }
}
