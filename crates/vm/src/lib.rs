//! # polymix-vm — in-process bytecode backend
//!
//! The second backend of the measurement harness: instead of emitting
//! standalone Rust and round-tripping through a `rustc` subprocess, a
//! transformed [`Program`](polymix_ast::tree::Program) is [`lower`]ed to
//! a compact register bytecode — parameters folded, affine subscripts
//! pre-composed with each site's inverse schedule and the arrays'
//! row-major strides — and executed [`run`] directly over the caller's
//! buffers.
//!
//! Semantics match [`polymix_ast::interp::execute`] exactly (same loop
//! bound evaluation, same value-before-write statement order, same
//! row-major addressing), so the two backends agree checksum-for-
//! checksum; what changes is cost: lowering is microseconds and a run
//! touches no subprocess, no lockfile, no filesystem. Parallel
//! annotations dispatch onto the persistent worker pool through the
//! same `polymix-runtime` primitives the emitted kernels use, with the
//! same poison/containment story ([`exec`] module docs).
//!
//! The backend exists for the measurement hot path: screening autotuner
//! candidates and differential checks where a full emit → `rustc` →
//! spawn round trip per cell would dominate wall-clock.

pub mod certify;
mod exec;
mod lower;

pub use certify::{
    certify, certify_and_apply, AccessProof, AccessSite, VmCertificate, VmViolation,
    VmViolationKind,
};
pub use exec::{run, run_opts, VmOptions};
pub use lower::{
    lower, AffExpr, CBound, CLoop, CNode, CompiledStmt, Instr, VmProgram, UNMODELED_KNOBS,
};

use std::fmt;

/// Failure of the bytecode backend: a shape the lowering does not model,
/// a failed static certificate, or a poisoned run (bad address, worker
/// panic, runtime misuse).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Lowering rejected the program.
    Lower(String),
    /// Static certification rejected the bytecode.
    Certify(String),
    /// Execution was poisoned.
    Runtime(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Lower(d) => write!(f, "vm lowering: {d}"),
            VmError::Certify(d) => write!(f, "vm certify: {d}"),
            VmError::Runtime(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::interp::{alloc_arrays, execute};
    use polymix_ast::tree::{Bound, LinExpr, Loop, Node, Par, Program, StmtNode};
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::expr::Expr;

    /// `for i in 0..N: A[i] = A[i] + 1`, annotation selectable.
    fn inc_program(par_kind: Par) -> Program {
        let mut b = ScopBuilder::new("inc", &["N"], &[8]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i")]), Expr::Const(1.0));
        b.stmt("S", a, &[ix("i")], body);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let body = Node::loop_(Loop {
            var: 0,
            name: "i".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: par_kind,
            body: Node::Stmt(StmtNode {
                stmt_idx: 0,
                iter_exprs: vec![LinExpr::var(0)],
            }),
        });
        Program {
            scop,
            body,
            n_vars: 1,
        }
    }

    fn checksum(arrays: &[Vec<f64>]) -> f64 {
        arrays
            .iter()
            .flat_map(|a| a.iter().enumerate())
            .map(|(k, &x)| x * ((k % 31) as f64 + 1.0))
            .sum()
    }

    #[test]
    fn sequential_run_matches_interpreter() {
        for params in [[5i64], [8], [1]] {
            let p = inc_program(Par::Seq);
            let vm = lower(&p, &params).expect("lowers");
            let mut a = alloc_arrays(&p.scop, &params);
            let mut b = alloc_arrays(&p.scop, &params);
            for (k, x) in a[0].iter_mut().enumerate() {
                *x = k as f64 * 0.5;
            }
            b[0].copy_from_slice(&a[0]);
            execute(&p, &params, &mut a);
            run(&vm, &mut b).expect("vm runs");
            assert_eq!(a, b, "params {params:?}");
        }
    }

    #[test]
    fn doall_dispatch_matches_sequential() {
        let p = inc_program(Par::Doall);
        let vm = lower(&p, &[8]).expect("lowers");
        let mut seq = alloc_arrays(&p.scop, &[8]);
        let mut par4 = alloc_arrays(&p.scop, &[8]);
        execute(&p, &[8], &mut seq);
        run_opts(
            &vm,
            &mut par4,
            VmOptions {
                threads: 4,
                ..VmOptions::default()
            },
        )
        .expect("parallel vm runs");
        assert_eq!(seq, par4);
    }

    #[test]
    fn reduction_dispatch_accumulates_exactly() {
        // s[0] += B[i]  over i in 0..N: an additive self-update, the
        // privatizable shape.
        let mut b = ScopBuilder::new("sum", &["N"], &[64]);
        let s = b.array_dims("s", vec![con(1)]);
        let arr = b.array("B", &["N"]);
        b.enter("i", con(0), par("N"));
        let body = Expr::add(b.rd(s, &[con(0)]), b.rd(arr, &[ix("i")]));
        b.stmt("S", s, &[con(0)], body);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let body = Node::loop_(Loop {
            var: 0,
            name: "i".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: Par::Reduction,
            body: Node::Stmt(StmtNode {
                stmt_idx: 0,
                iter_exprs: vec![LinExpr::var(0)],
            }),
        });
        let p = Program {
            scop,
            body,
            n_vars: 1,
        };
        let vm = lower(&p, &[64]).expect("lowers");
        let mut arrays = alloc_arrays(&p.scop, &[64]);
        for (k, x) in arrays[1].iter_mut().enumerate() {
            *x = (k + 1) as f64;
        }
        arrays[0][0] = 100.0;
        run_opts(
            &vm,
            &mut arrays,
            VmOptions {
                threads: 4,
                ..VmOptions::default()
            },
        )
        .expect("reduction vm runs");
        assert_eq!(arrays[0][0], 100.0 + (64.0 * 65.0) / 2.0);
    }

    /// 2-level nest with a flow dependence `(1, 0)`: pipeline, wavefront
    /// and taskgraph dispatch must all reproduce the sequential result.
    fn stencil_program(par_kind: Par) -> Program {
        let mut b = ScopBuilder::new("st", &["N"], &[6]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(0), par("N"));
        let body = Expr::add(
            b.rd(a, &[ix("i") - con(1), ix("j")]),
            Expr::Const(1.0),
        );
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let inner = Node::loop_(Loop {
            var: 1,
            name: "j".into(),
            lo: Bound::con(0),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: Par::Seq,
            body: Node::Stmt(StmtNode {
                stmt_idx: 0,
                iter_exprs: vec![LinExpr::var(0), LinExpr::var(1)],
            }),
        });
        let body = Node::loop_(Loop {
            var: 0,
            name: "i".into(),
            lo: Bound::con(1),
            hi: Bound::of(LinExpr::param(0).plus(-1)),
            step: 1,
            par: par_kind,
            body: inner,
        });
        Program {
            scop,
            body,
            n_vars: 2,
        }
    }

    #[test]
    fn grid_dispatches_match_sequential() {
        let reference = {
            let p = stencil_program(Par::Seq);
            let mut a = alloc_arrays(&p.scop, &[6]);
            for (k, x) in a[0].iter_mut().enumerate() {
                *x = (k % 7) as f64;
            }
            execute(&p, &[6], &mut a);
            a
        };
        for (par_kind, taskgraph) in [
            (Par::Pipeline, false),
            (Par::Wavefront, false),
            (Par::Wavefront, true),
        ] {
            let p = stencil_program(par_kind);
            let vm = lower(&p, &[6]).expect("lowers");
            let mut a = alloc_arrays(&p.scop, &[6]);
            for (k, x) in a[0].iter_mut().enumerate() {
                *x = (k % 7) as f64;
            }
            run_opts(
                &vm,
                &mut a,
                VmOptions {
                    threads: 3,
                    taskgraph,
                    ..VmOptions::default()
                },
            )
            .expect("grid vm runs");
            assert_eq!(
                checksum(&reference),
                checksum(&a),
                "{par_kind:?} taskgraph={taskgraph}"
            );
        }
    }

    #[test]
    fn out_of_bounds_store_poisons_instead_of_corrupting() {
        let mut p = inc_program(Par::Seq);
        // Push the loop one past the end: A[N] is out of bounds.
        if let Node::Loop(l) = &mut p.body {
            l.hi = Bound::of(LinExpr::param(0));
        }
        let vm = lower(&p, &[8]).expect("lowers");
        let mut a = alloc_arrays(&p.scop, &[8]);
        let err = run(&vm, &mut a).expect_err("must poison");
        assert!(
            matches!(&err, VmError::Runtime(d) if d.contains("runtime_error")),
            "{err:?}"
        );
    }

    #[test]
    fn parameter_arity_mismatch_is_a_lower_error() {
        let p = inc_program(Par::Seq);
        assert!(matches!(lower(&p, &[]), Err(VmError::Lower(_))));
    }

    #[test]
    fn guards_are_compiled_and_honored() {
        let mut p = inc_program(Par::Seq);
        let inner = match &p.body {
            Node::Loop(l) => l.body.clone(),
            other => panic!("unexpected root {other:?}"),
        };
        if let Node::Loop(l) = &mut p.body {
            l.body = Node::Guard(vec![LinExpr::var(0).plus(-3)], Box::new(inner));
        }
        let vm = lower(&p, &[6]).expect("lowers");
        let mut a = alloc_arrays(&p.scop, &[6]);
        run(&vm, &mut a).expect("vm runs");
        assert_eq!(a[0], vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn certifier_proves_every_access_and_elides() {
        let p = inc_program(Par::Seq);
        let mut vm = lower(&p, &[8]).expect("lowers");
        let cert = certify(&vm);
        assert!(cert.is_certified(), "{:?}", cert.violations);
        let (proven, total) = cert.counts();
        assert_eq!(total, 2, "one load + one store");
        assert_eq!(proven, total);
        cert.apply(&mut vm).expect("apply");
        // The elided run must still produce the exact result.
        let mut checked = alloc_arrays(&p.scop, &[8]);
        let mut elided = alloc_arrays(&p.scop, &[8]);
        run(&vm, &mut checked).expect("checked run");
        run_opts(
            &vm,
            &mut elided,
            VmOptions {
                elide: true,
                ..VmOptions::default()
            },
        )
        .expect("elided run");
        assert_eq!(checked, elided);
    }

    #[test]
    fn certifier_finds_out_of_bounds_with_witness() {
        let mut p = inc_program(Par::Seq);
        if let Node::Loop(l) = &mut p.body {
            l.hi = Bound::of(LinExpr::param(0)); // A[N] at the last trip
        }
        let vm = lower(&p, &[8]).expect("lowers");
        let cert = certify(&vm);
        assert!(!cert.is_certified());
        assert!(
            cert.violations
                .iter()
                .all(|v| v.kind == VmViolationKind::OutOfBounds),
            "{:?}",
            cert.violations
        );
        // The uncertified program must not be appliable.
        let mut vm2 = vm.clone();
        assert!(matches!(cert.apply(&mut vm2), Err(VmError::Certify(_))));
    }

    #[test]
    fn certifier_rejects_relabeled_doall() {
        // The stencil carries a (1, 0) flow dependence on the outer
        // loop; relabeling the lowered loop as doall must be caught from
        // the bytecode footprints alone.
        let p = stencil_program(Par::Seq);
        let mut vm = lower(&p, &[6]).expect("lowers");
        if let CNode::Loop(l) = &mut vm.body {
            l.par = Par::Doall;
        }
        let cert = certify(&vm);
        assert!(cert
            .violations
            .iter()
            .any(|v| v.kind == VmViolationKind::DoallCarriesDep),
            "{:?}", cert.violations);
    }

    #[test]
    fn certifier_accepts_safe_doall_and_reduction() {
        for par_kind in [Par::Doall, Par::Reduction] {
            let p = inc_program(par_kind);
            let vm = lower(&p, &[8]).expect("lowers");
            let cert = certify(&vm);
            // `A[i] = A[i] + 1` is iteration-disjoint: safe as doall,
            // and (as an additive self-update) safe as reduction.
            assert!(cert.is_certified(), "{par_kind:?}: {:?}", cert.violations);
            assert!(cert.loops_checked <= 1);
        }
    }

    #[test]
    fn certifier_rejects_wrong_reduction_accumulator() {
        // s[0] += B[i] with the accumulator annotation pointed at B.
        let p = {
            let mut b = ScopBuilder::new("sum", &["N"], &[64]);
            let s = b.array_dims("s", vec![con(1)]);
            let arr = b.array("B", &["N"]);
            b.enter("i", con(0), par("N"));
            let body = Expr::add(b.rd(s, &[con(0)]), b.rd(arr, &[ix("i")]));
            b.stmt("S", s, &[con(0)], body);
            b.exit();
            let scop = b.finish().expect("well-formed SCoP");
            Program {
                scop,
                body: Node::loop_(Loop {
                    var: 0,
                    name: "i".into(),
                    lo: Bound::con(0),
                    hi: Bound::of(LinExpr::param(0).plus(-1)),
                    step: 1,
                    par: Par::Reduction,
                    body: Node::Stmt(StmtNode {
                        stmt_idx: 0,
                        iter_exprs: vec![LinExpr::var(0)],
                    }),
                }),
                n_vars: 1,
            }
        };
        let mut vm = lower(&p, &[16]).expect("lowers");
        assert!(certify(&vm).is_certified(), "clean program certifies");
        if let CNode::Loop(l) = &mut vm.body {
            assert_eq!(l.reduction_array, Some(0));
            l.reduction_array = Some(1); // point at B instead of s
        }
        let cert = certify(&vm);
        assert!(cert
            .violations
            .iter()
            .any(|v| v.kind == VmViolationKind::ReductionUnsafe),
            "{:?}", cert.violations);
    }

    #[test]
    fn invalid_program_is_rejected_before_the_hot_loop() {
        let p = inc_program(Par::Seq);
        let mut vm = lower(&p, &[8]).expect("lowers");
        vm.body = CNode::Stmt(7); // stmt table has one entry
        let mut a = alloc_arrays(&p.scop, &[8]);
        let err = run(&vm, &mut a).expect_err("must reject");
        assert!(
            matches!(&err, VmError::Runtime(d) if d.contains("invalid program")),
            "{err:?}"
        );
        let cert = certify(&vm);
        assert!(cert
            .violations
            .iter()
            .any(|v| v.kind == VmViolationKind::Malformed));
    }
}
