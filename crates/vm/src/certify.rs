//! Static certification of lowered bytecode: abstract interpretation of
//! every [`AffExpr`] address over the exact polyhedron of its enclosing
//! compiled loop nest, plus an independent re-derivation of the
//! parallel-dispatch safety conditions from the bytecode itself.
//!
//! This is translation validation of [`crate::lower`]: the AST-level
//! certifier (`polymix-verify`) proves the *transformed program* legal,
//! but nothing checked the *lowered* artifact the measurement hot path
//! actually executes — a lowering bug that skews a pre-composed address
//! or widens a compiled bound would previously surface only as a
//! dynamic-bounds-check poison (or worse, as a silently wrong parallel
//! schedule). The certifier re-derives everything it claims from
//! [`VmProgram`] alone:
//!
//! 1. **Bounds.** Each loop contributes exact rows to a context
//!    polyhedron (`v >= ceil(e/d)` ⟺ `d·v − e ≥ 0` for integer `v` and
//!    `d > 0`; guards contribute `g ≥ 0`). An access with address `a`
//!    into an array of `len` cells is proven in-bounds when both
//!    `ctx ∧ a ≤ −1` and `ctx ∧ a ≥ len` are empty by Fourier–Motzkin
//!    elimination. Loops with `step > 1` are over-approximated by their
//!    bound interval, which is sound for in-bounds proofs (the executed
//!    lattice is a subset of the interval).
//! 2. **Effects.** For every loop the executor would dispatch in
//!    parallel, cross-iteration conflicts are re-derived from the
//!    bytecode footprints: two distinct iterations (their distance on
//!    the loop's step lattice encoded exactly through an existential
//!    multiplier) must not touch one address with at least one write —
//!    modulo the privatized accumulator of a reduction loop, whose
//!    additive self-update shape is re-checked instruction by
//!    instruction against the loop's recorded `reduction_array`.
//! 3. **Elision.** A passing certificate can be [`VmCertificate::apply`]ed
//!    back onto the program, flipping the per-access `proven` flags that
//!    let [`crate::run_opts`] skip dynamic bounds checks when
//!    [`crate::VmOptions::elide`] is set.
//!
//! Everything the analysis cannot prove stays a structured violation —
//! the certifier never guesses, and an unproven access is never elided.

use crate::lower::{AffExpr, CBound, CLoop, CNode, CompiledStmt, Instr, VmProgram};
use crate::VmError;
use polymix_ir::expr::BinOp;
use polymix_math::poly::{Constraint, Polyhedron};
use std::collections::BTreeMap;
use std::fmt;

/// What a [`VmViolation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VmViolationKind {
    /// An address provably escapes its array inside the executed
    /// iteration space (a witness frame is part of the detail).
    OutOfBounds,
    /// The analysis could not bound an address (unbound variable,
    /// unbounded context, or a shape outside the affine model). Not a
    /// proven escape, but the access cannot be certified.
    BoundsUnproven,
    /// Two distinct iterations of a doall-dispatched loop touch the same
    /// address with at least one write.
    DoallCarriesDep,
    /// A reduction-dispatched loop whose bytecode is not the additive
    /// accumulator self-update shape, whose recorded accumulator
    /// disagrees with the re-derived one, or whose non-accumulator
    /// accesses conflict across iterations.
    ReductionUnsafe,
    /// A pipeline/wavefront grid pair of cells conflicts against the
    /// execution order guaranteed by the `{(1,0),(0,1)}` cone.
    GridUncovered,
    /// The program fails structural validation ([`VmProgram::validate`]).
    Malformed,
    /// A shape the certifier does not model (e.g. a shadowed loop
    /// variable); nothing under it is proven.
    Unsupported,
}

impl VmViolationKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            VmViolationKind::OutOfBounds => "vm-out-of-bounds",
            VmViolationKind::BoundsUnproven => "vm-bounds-unproven",
            VmViolationKind::DoallCarriesDep => "vm-doall-carries-dep",
            VmViolationKind::ReductionUnsafe => "vm-reduction-unsafe",
            VmViolationKind::GridUncovered => "vm-grid-uncovered",
            VmViolationKind::Malformed => "vm-malformed",
            VmViolationKind::Unsupported => "vm-unsupported",
        }
    }
}

impl fmt::Display for VmViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed proof obligation of the bytecode certificate.
#[derive(Clone, Debug)]
pub struct VmViolation {
    pub kind: VmViolationKind,
    /// Compiled statement index the violation anchors to (`None` for
    /// loop-level findings without a single statement).
    pub stmt: Option<u32>,
    /// What exactly went wrong.
    pub detail: String,
}

impl fmt::Display for VmViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(s) = self.stmt {
            write!(f, " stmt {s}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Which access of a compiled statement a proof talks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessSite {
    /// The `Instr::Load` at this position in [`CompiledStmt::code`].
    Load(usize),
    /// The statement's store.
    Store,
}

/// Proof state of one (statement, access) pair, aggregated over every
/// control-tree context the statement appears in.
#[derive(Clone, Debug)]
pub struct AccessProof {
    pub stmt: u32,
    pub site: AccessSite,
    pub array: u32,
    /// In-bounds in *every* context the access executes from.
    pub proven: bool,
    /// Abstract address interval (exact affine min/max over the context
    /// polyhedron, joined across contexts); `None` when unbounded or
    /// when no context reaches the access.
    pub range: Option<(i64, i64)>,
}

/// The result of [`certify`]: per-access proofs plus every failed
/// obligation.
#[derive(Clone, Debug, Default)]
pub struct VmCertificate {
    /// One entry per reachable (statement, access) pair.
    pub accesses: Vec<AccessProof>,
    /// Everything that failed; empty iff the program is certified.
    pub violations: Vec<VmViolation>,
    /// Parallel-dispatchable loops whose effect summary was checked.
    pub loops_checked: usize,
    /// Cross-iteration access pairs tested for conflicts.
    pub pairs_checked: usize,
}

impl VmCertificate {
    /// True when every obligation was discharged.
    pub fn is_certified(&self) -> bool {
        self.violations.is_empty()
    }

    /// `(proven, total)` reachable access counts.
    pub fn counts(&self) -> (usize, usize) {
        let proven = self.accesses.iter().filter(|a| a.proven).count();
        (proven, self.accesses.len())
    }

    /// Writes the proofs back onto the program: flips `proven` on every
    /// access this certificate proved in-bounds, so a run with
    /// [`crate::VmOptions::elide`] skips their dynamic checks. Fails
    /// unless the certificate is passing. `vm` must be the same program
    /// [`certify`] analyzed — applying proofs to a different (or since
    /// mutated) program voids the soundness contract.
    pub fn apply(&self, vm: &mut VmProgram) -> Result<(), VmError> {
        if !self.is_certified() {
            let first = self
                .violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default();
            return Err(VmError::Certify(format!(
                "{} violation(s); first: {first}",
                self.violations.len()
            )));
        }
        for p in &self.accesses {
            if !p.proven {
                continue;
            }
            let Some(s) = vm.stmts.get_mut(p.stmt as usize) else {
                return Err(VmError::Certify(format!(
                    "certificate names stmt {} outside the program's table",
                    p.stmt
                )));
            };
            match p.site {
                AccessSite::Store => s.store_proven = true,
                AccessSite::Load(pos) => match s.code.get_mut(pos) {
                    Some(Instr::Load { proven, .. }) => *proven = true,
                    _ => {
                        return Err(VmError::Certify(format!(
                            "certificate names a load at stmt {} pos {pos} that is not there",
                            p.stmt
                        )))
                    }
                },
            }
        }
        Ok(())
    }
}

/// Certifies a lowered program; see the module docs for what is proved.
pub fn certify(vm: &VmProgram) -> VmCertificate {
    if let Err(d) = vm.validate() {
        return VmCertificate {
            violations: vec![VmViolation {
                kind: VmViolationKind::Malformed,
                stmt: None,
                detail: d,
            }],
            ..VmCertificate::default()
        };
    }
    let mut c = Certifier {
        vm,
        n: vm.n_vars.max(1),
        ctx: Vec::new(),
        bound_vars: Vec::new(),
        proofs: BTreeMap::new(),
        violations: Vec::new(),
        loops_checked: 0,
        pairs_checked: 0,
    };
    c.node(&vm.body, true);
    let accesses = c
        .proofs
        .into_iter()
        .map(|((stmt, site), (array, proven, range))| AccessProof {
            stmt,
            site,
            array,
            proven,
            range,
        })
        .collect();
    VmCertificate {
        accesses,
        violations: c.violations,
        loops_checked: c.loops_checked,
        pairs_checked: c.pairs_checked,
    }
}

/// Convenience for the measurement path: certify, then apply the proofs
/// in place. Returns the certificate on success, the first violations in
/// the error otherwise.
pub fn certify_and_apply(vm: &mut VmProgram) -> Result<VmCertificate, VmError> {
    let cert = certify(vm);
    cert.apply(vm)?;
    Ok(cert)
}

/// One access occurrence inside a parallel region, with the full row
/// context (root → site) it executes under.
struct Acc {
    stmt: u32,
    site: AccessSite,
    array: u32,
    addr: AffExpr,
    ctx: Vec<Vec<i64>>,
}

impl Acc {
    fn is_write(&self) -> bool {
        matches!(self.site, AccessSite::Store)
    }
}

struct Certifier<'a> {
    vm: &'a VmProgram,
    /// Loop-variable frame width (polyhedron dimensionality).
    n: usize,
    /// Context rows over `n` dims + constant, all `>= 0`.
    ctx: Vec<Vec<i64>>,
    /// Loop variables bound on the current path, outermost first.
    bound_vars: Vec<usize>,
    /// `(stmt, site) → (array, proven-in-all-contexts, joined range)`.
    proofs: BTreeMap<(u32, AccessSite), (u32, bool, Option<(i64, i64)>)>,
    violations: Vec<VmViolation>,
    loops_checked: usize,
    pairs_checked: usize,
}

/// `e` as a constraint row over `n` dims (+ constant column).
fn aff_row(e: &AffExpr, n: usize) -> Vec<i64> {
    let mut row = vec![0i64; n + 1];
    for &(v, k) in &e.terms {
        row[v as usize] += k;
    }
    row[n] += e.c;
    row
}

/// Rows of `lo <= v <= hi` under the exact `max`-of-ceil / `min`-of-floor
/// semantics of [`CBound::eval_lower`] / [`CBound::eval_upper`]: for an
/// integer `v` and `d > 0`, `v >= ceil(e/d)` ⟺ `d·v - e >= 0` and
/// `v <= floor(f/d)` ⟺ `f - d·v >= 0`.
fn bound_rows(var: usize, lo: &CBound, hi: &CBound, n: usize) -> Vec<Vec<i64>> {
    let mut rows = Vec::with_capacity(lo.exprs.len() + hi.exprs.len());
    for (e, d) in &lo.exprs {
        let mut row: Vec<i64> = aff_row(e, n).iter().map(|&x| -x).collect();
        row[var] += d;
        rows.push(row);
    }
    for (e, d) in &hi.exprs {
        let mut row = aff_row(e, n);
        row[var] -= d;
        rows.push(row);
    }
    rows
}

/// Lifts a row over `n` dims into a `dims`-dim space at `shift`.
fn lift(row: &[i64], n: usize, dims: usize, shift: usize) -> Vec<i64> {
    let mut out = vec![0i64; dims + 1];
    for (i, &c) in row[..n].iter().enumerate() {
        out[shift + i] = c;
    }
    out[dims] = row[n];
    out
}

/// How the executor would dispatch this loop when `threads > 1` —
/// mirrors the `match l.par` in `exec.rs` exactly.
enum Dispatch {
    Doall,
    Reduction(u32),
    Grid,
}

fn dispatchable(l: &CLoop) -> Option<Dispatch> {
    use polymix_ast::tree::Par;
    match l.par {
        Par::Doall => Some(Dispatch::Doall),
        Par::Reduction => l.reduction_array.map(Dispatch::Reduction),
        Par::Pipeline | Par::Wavefront if l.rect_grid => Some(Dispatch::Grid),
        _ => None,
    }
}

/// Is this statement the additive self-update of `acc` (the only shape
/// [`polymix_runtime::reduce_array`]'s zero-init + additive merge
/// privatization is exact for)? Re-derived from the bytecode without
/// consulting [`CLoop::reduction_array`].
fn additive_self_update(s: &CompiledStmt, acc: u32) -> bool {
    if s.store_array != acc {
        return false;
    }
    let Some(Instr::Bin {
        op: BinOp::Add,
        dst,
        a,
        b,
    }) = s.code.last()
    else {
        return false;
    };
    if *dst != s.result {
        return false;
    }
    let self_load = |r: u16| {
        s.code.iter().any(|i| matches!(i, Instr::Load { dst, array, addr, .. }
            if *dst == r && *array == acc && *addr == s.store_addr))
    };
    if !self_load(*a) && !self_load(*b) {
        return false;
    }
    s.code
        .iter()
        .filter(|i| matches!(i, Instr::Load { array, .. } if *array == acc))
        .count()
        == 1
}

fn stmt_indices(node: &CNode, out: &mut Vec<u32>) {
    match node {
        CNode::Seq(xs) => xs.iter().for_each(|x| stmt_indices(x, out)),
        CNode::Loop(l) => stmt_indices(&l.body, out),
        CNode::Guard(_, b) => stmt_indices(b, out),
        CNode::Stmt(k) => out.push(*k),
    }
}

impl Certifier<'_> {
    fn violation(&mut self, kind: VmViolationKind, stmt: Option<u32>, detail: String) {
        self.violations.push(VmViolation { kind, stmt, detail });
    }

    /// `dispatch` is true only outside any parallel-dispatched region,
    /// mirroring the executor's `par` flag.
    fn node(&mut self, node: &CNode, dispatch: bool) {
        match node {
            CNode::Seq(xs) => xs.iter().for_each(|x| self.node(x, dispatch)),
            CNode::Guard(gs, b) => {
                let pushed = gs.len();
                for g in gs {
                    let row = aff_row(g, self.n);
                    self.ctx.push(row);
                }
                self.node(b, dispatch);
                self.ctx.truncate(self.ctx.len() - pushed);
            }
            CNode::Stmt(k) => self.check_stmt(*k),
            CNode::Loop(l) => {
                if self.bound_vars.contains(&l.var) {
                    self.violation(
                        VmViolationKind::Unsupported,
                        None,
                        format!(
                            "loop variable {} shadows an enclosing loop; nothing under it is proven",
                            l.var
                        ),
                    );
                    self.mark_unproven(&l.body);
                    return;
                }
                let outer = self.bound_vars.clone();
                let rows = bound_rows(l.var, &l.lo, &l.hi, self.n);
                let pushed = rows.len();
                self.ctx.extend(rows);
                self.bound_vars.push(l.var);
                let dispatched = dispatch && dispatchable(l).is_some();
                if dispatched {
                    self.check_parallel(l, &outer);
                }
                self.node(&l.body, dispatch && !dispatched);
                self.bound_vars.pop();
                self.ctx.truncate(self.ctx.len() - pushed);
            }
        }
    }

    /// Records that every access under `node` is unproven (used when a
    /// subtree falls outside the model, so elision can never apply).
    fn mark_unproven(&mut self, node: &CNode) {
        let mut sites = Vec::new();
        stmt_indices(node, &mut sites);
        let vm = self.vm;
        for k in sites {
            if let Some(s) = vm.stmts.get(k as usize) {
                for (pos, i) in s.code.iter().enumerate() {
                    if let Instr::Load { array, .. } = i {
                        let e = self
                            .proofs
                            .entry((k, AccessSite::Load(pos)))
                            .or_insert((*array, false, None));
                        e.1 = false;
                    }
                }
                let e = self
                    .proofs
                    .entry((k, AccessSite::Store))
                    .or_insert((s.store_array, false, None));
                e.1 = false;
            }
        }
    }

    fn check_stmt(&mut self, k: u32) {
        // In range: `certify` validated the program up front.
        let vm = self.vm;
        let s = &vm.stmts[k as usize];
        for (pos, i) in s.code.iter().enumerate() {
            if let Instr::Load { array, addr, .. } = i {
                self.check_access(k, AccessSite::Load(pos), *array, addr);
            }
        }
        self.check_access(k, AccessSite::Store, s.store_array, &s.store_addr);
    }

    fn ctx_poly(&self) -> Polyhedron {
        let mut p = Polyhedron::universe(self.n);
        for row in &self.ctx {
            p.add(Constraint::ge(row.clone()));
        }
        p
    }

    fn check_access(&mut self, stmt: u32, site: AccessSite, array: u32, addr: &AffExpr) {
        let len = self.vm.array_lens[array as usize] as i64;
        let row = aff_row(addr, self.n);

        // `ctx ∧ addr <= -1` must be empty...
        let mut low = self.ctx_poly();
        let mut neg: Vec<i64> = row.iter().map(|&x| -x).collect();
        neg[self.n] -= 1;
        low.add(Constraint::ge(neg));
        // ...and so must `ctx ∧ addr >= len`.
        let mut high = self.ctx_poly();
        let mut over = row.clone();
        over[self.n] -= len;
        high.add(Constraint::ge(over));

        let low_ok = low.is_empty();
        let high_ok = high.is_empty();
        let proven = low_ok && high_ok;
        if !proven {
            let what = match site {
                AccessSite::Store => "store".to_string(),
                AccessSite::Load(pos) => format!("load (instr {pos})"),
            };
            // Dimensions the context never mentions are unconstrained;
            // pin them to zero so the escape set stays bounded and
            // sampleable (they cannot affect the violated constraint).
            let mut escape = if !low_ok { low } else { high };
            for d in 0..self.n {
                if !escape.constraints().iter().any(|c| c.mentions(d)) {
                    escape = escape.fix(d, 0);
                }
            }
            let witness = escape.sample();
            match witness {
                Some(frame) => {
                    let off = addr.eval(&frame);
                    self.violation(
                        VmViolationKind::OutOfBounds,
                        Some(stmt),
                        format!(
                            "{what} into array {array} (len {len}) can reach offset {off} \
                             at frame {frame:?}"
                        ),
                    );
                }
                None => self.violation(
                    VmViolationKind::BoundsUnproven,
                    Some(stmt),
                    format!(
                        "{what} into array {array} (len {len}): address not bounded by the \
                         enclosing loop polyhedron"
                    ),
                ),
            }
        }
        let range = self.abstract_range(addr);
        let entry = self
            .proofs
            .entry((stmt, site))
            .or_insert((array, proven, range));
        entry.1 &= proven;
        entry.2 = match (entry.2, range) {
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            (None, r) | (r, None) => r,
        };
    }

    /// Exact affine min/max of `addr` over the context: project the
    /// augmented polyhedron `ctx ∧ a = addr` onto `a` and read the
    /// constant bounds. `None` when unbounded (or no context reaches the
    /// access, in which case there is nothing to claim).
    fn abstract_range(&self, addr: &AffExpr) -> Option<(i64, i64)> {
        let n = self.n;
        let mut p = Polyhedron::universe(n + 1);
        for row in &self.ctx {
            p.add(Constraint::ge(lift(row, n, n + 1, 0)));
        }
        let mut eq = vec![0i64; n + 2];
        eq[n] = 1;
        for &(v, k) in &addr.terms {
            eq[v as usize] -= k;
        }
        eq[n + 1] = -addr.c;
        p.add(Constraint::eq(eq));
        let dims: Vec<usize> = (0..n).collect();
        let q = p.eliminate_many(&dims);
        if q.is_empty() {
            return None;
        }
        let b = q.bounds(n, n + 1);
        let zeros = vec![0i64; n + 1];
        let lo = b.lower.iter().map(|e| e.eval_ceil(&zeros)).max()?;
        let hi = b.upper.iter().map(|e| e.eval_floor(&zeros)).min()?;
        Some((lo, hi))
    }

    /// Effect-summary check of one parallel-dispatchable loop. `outer`
    /// holds the loop variables bound *above* the loop (equated across
    /// the two iteration copies); `self.ctx` already includes the loop's
    /// own bounds.
    fn check_parallel(&mut self, l: &CLoop, outer: &[usize]) {
        self.loops_checked += 1;
        let mut accs = Vec::new();
        let mut seen = self.bound_vars.clone();
        let mut sub_ctx = self.ctx.clone();
        if !self.collect(&l.body, &mut sub_ctx, &mut seen, &mut accs) {
            self.violation(
                VmViolationKind::Unsupported,
                None,
                format!(
                    "parallel loop over variable {} contains a shadowed loop variable; \
                     its effect summary cannot be proven",
                    l.var
                ),
            );
            return;
        }
        match dispatchable(l) {
            Some(Dispatch::Doall) => {
                self.conflicts(l, outer, &accs, None, VmViolationKind::DoallCarriesDep);
            }
            Some(Dispatch::Reduction(acc)) => {
                let mut sites = Vec::new();
                stmt_indices(&l.body, &mut sites);
                let vm = self.vm;
                for k in sites {
                    // In range: validated up front.
                    let s = &vm.stmts[k as usize];
                    if !additive_self_update(s, acc) {
                        self.violation(
                            VmViolationKind::ReductionUnsafe,
                            Some(k),
                            format!(
                                "bytecode is not an additive self-update of the recorded \
                                 accumulator array {acc}"
                            ),
                        );
                    }
                }
                // The accumulator is privatized (zero-init + additive
                // merge), so only the *other* arrays must be conflict-free
                // across iterations.
                self.conflicts(l, outer, &accs, Some(acc), VmViolationKind::ReductionUnsafe);
            }
            Some(Dispatch::Grid) => self.grid_conflicts(l, outer, &accs),
            None => {}
        }
    }

    /// Collects every access under `node` with its full context rows.
    /// Returns false when a shadowed loop variable makes the subtree
    /// unanalyzable.
    fn collect(
        &self,
        node: &CNode,
        ctx: &mut Vec<Vec<i64>>,
        seen: &mut Vec<usize>,
        out: &mut Vec<Acc>,
    ) -> bool {
        match node {
            CNode::Seq(xs) => xs.iter().all(|x| self.collect(x, ctx, seen, out)),
            CNode::Guard(gs, b) => {
                for g in gs {
                    ctx.push(aff_row(g, self.n));
                }
                let ok = self.collect(b, ctx, seen, out);
                ctx.truncate(ctx.len() - gs.len());
                ok
            }
            CNode::Loop(l) => {
                if seen.contains(&l.var) {
                    return false;
                }
                let rows = bound_rows(l.var, &l.lo, &l.hi, self.n);
                let pushed = rows.len();
                ctx.extend(rows);
                seen.push(l.var);
                let ok = self.collect(&l.body, ctx, seen, out);
                seen.pop();
                ctx.truncate(ctx.len() - pushed);
                ok
            }
            CNode::Stmt(k) => {
                // In range: validated up front.
                let s = &self.vm.stmts[*k as usize];
                for (pos, i) in s.code.iter().enumerate() {
                    if let Instr::Load { array, addr, .. } = i {
                        out.push(Acc {
                            stmt: *k,
                            site: AccessSite::Load(pos),
                            array: *array,
                            addr: addr.clone(),
                            ctx: ctx.clone(),
                        });
                    }
                }
                out.push(Acc {
                    stmt: *k,
                    site: AccessSite::Store,
                    array: s.store_array,
                    addr: s.store_addr.clone(),
                    ctx: ctx.clone(),
                });
                true
            }
        }
    }

    /// Two-copy conflict test: is there a pair of *distinct* iterations
    /// of `l` (distance a positive multiple of `step`, outer variables
    /// equal) whose accesses `x` (earlier copy) and `y` (later copy) hit
    /// the same address with at least one write? Exact on the loop's
    /// step lattice through the existential multiplier dimension.
    fn conflicts(
        &mut self,
        l: &CLoop,
        outer: &[usize],
        accs: &[Acc],
        skip_array: Option<u32>,
        kind: VmViolationKind,
    ) {
        let n = self.n;
        let dims = 2 * n + 1; // src copy, dst copy, lattice multiplier k
        for x in accs {
            for y in accs {
                if x.array != y.array || (!x.is_write() && !y.is_write()) {
                    continue;
                }
                if skip_array == Some(x.array) {
                    continue;
                }
                self.pairs_checked += 1;
                let mut p = Polyhedron::universe(dims);
                for row in &x.ctx {
                    p.add(Constraint::ge(lift(row, n, dims, 0)));
                }
                for row in &y.ctx {
                    p.add(Constraint::ge(lift(row, n, dims, n)));
                }
                for &w in outer {
                    let mut eq = vec![0i64; dims + 1];
                    eq[w] = 1;
                    eq[n + w] = -1;
                    p.add(Constraint::eq(eq));
                }
                // y_v - x_v = step·k, k >= 1.
                let mut lat = vec![0i64; dims + 1];
                lat[n + l.var] += 1;
                lat[l.var] -= 1;
                lat[2 * n] = -l.step;
                p.add(Constraint::eq(lat));
                let mut kpos = vec![0i64; dims + 1];
                kpos[2 * n] = 1;
                kpos[dims] = -1;
                p.add(Constraint::ge(kpos));
                // addr_x(src) = addr_y(dst).
                let xr = aff_row(&x.addr, n);
                let yr = aff_row(&y.addr, n);
                let mut eq = lift(&xr, n, dims, 0);
                let ylift = lift(&yr, n, dims, n);
                for (a, b) in eq.iter_mut().zip(&ylift) {
                    *a -= b;
                }
                p.add(Constraint::eq(eq));
                if !p.is_empty() {
                    let w = p.sample();
                    self.violation(
                        kind,
                        Some(x.stmt),
                        format!(
                            "distinct iterations of the loop over variable {} conflict on \
                             array {} (stmt {} {:?} vs stmt {} {:?}){}",
                            l.var,
                            x.array,
                            x.stmt,
                            x.site,
                            y.stmt,
                            y.site,
                            match w {
                                Some(pt) => format!("; witness frames {:?} / {:?}",
                                    &pt[..n], &pt[n..2 * n]),
                                None => String::new(),
                            }
                        ),
                    );
                }
            }
        }
    }

    /// Conflict test for a rectangular 2-level grid dispatch
    /// (pipeline / wavefront / taskgraph, all guaranteeing that cell
    /// `(i, j)` runs after every `(i' <= i, j' <= j)`): the only
    /// unordered pairs are `di >= 1 ∧ dj <= -1`, so a conflict inside
    /// that cone is a race.
    fn grid_conflicts(&mut self, l: &CLoop, outer: &[usize], accs: &[Acc]) {
        let CNode::Loop(inner) = &l.body else {
            self.violation(
                VmViolationKind::Malformed,
                None,
                "rect_grid loop lost its inner loop".to_string(),
            );
            return;
        };
        let n = self.n;
        let dims = 2 * n + 2; // two copies + two lattice multipliers
        for x in accs {
            for y in accs {
                if x.array != y.array || (!x.is_write() && !y.is_write()) {
                    continue;
                }
                self.pairs_checked += 1;
                let mut p = Polyhedron::universe(dims);
                for row in &x.ctx {
                    p.add(Constraint::ge(lift(row, n, dims, 0)));
                }
                for row in &y.ctx {
                    p.add(Constraint::ge(lift(row, n, dims, n)));
                }
                for &w in outer {
                    let mut eq = vec![0i64; dims + 1];
                    eq[w] = 1;
                    eq[n + w] = -1;
                    p.add(Constraint::eq(eq));
                }
                // di = step_o·k1, k1 >= 1; dj = step_i·k2, k2 <= -1.
                let mut lat_o = vec![0i64; dims + 1];
                lat_o[n + l.var] += 1;
                lat_o[l.var] -= 1;
                lat_o[2 * n] = -l.step;
                p.add(Constraint::eq(lat_o));
                let mut k1 = vec![0i64; dims + 1];
                k1[2 * n] = 1;
                k1[dims] = -1;
                p.add(Constraint::ge(k1));
                let mut lat_i = vec![0i64; dims + 1];
                lat_i[n + inner.var] += 1;
                lat_i[inner.var] -= 1;
                lat_i[2 * n + 1] = -inner.step;
                p.add(Constraint::eq(lat_i));
                let mut k2 = vec![0i64; dims + 1];
                k2[2 * n + 1] = -1;
                k2[dims] = -1;
                p.add(Constraint::ge(k2));
                // Same address.
                let xr = aff_row(&x.addr, n);
                let yr = aff_row(&y.addr, n);
                let mut eq = lift(&xr, n, dims, 0);
                let ylift = lift(&yr, n, dims, n);
                for (a, b) in eq.iter_mut().zip(&ylift) {
                    *a -= b;
                }
                p.add(Constraint::eq(eq));
                if !p.is_empty() {
                    self.violation(
                        VmViolationKind::GridUncovered,
                        Some(x.stmt),
                        format!(
                            "grid cells outside the {{(1,0),(0,1)}} order cone conflict on \
                             array {} (stmt {} {:?} vs stmt {} {:?})",
                            x.array, x.stmt, x.site, y.stmt, y.site
                        ),
                    );
                }
            }
        }
    }
}
