//! Polyhedral-schedule → loop-AST generation (CLooG-lite).
//!
//! Given new `2d+1` schedules, each statement's iteration domain is mapped
//! into the new loop coordinates (`y = α·x + γ`), and the loop tree is
//! built recursively over the β-interleaving: statements sharing a β
//! prefix share the loops of that prefix. At each loop level the bounds
//! are obtained by Fourier–Motzkin projection of every member statement's
//! transformed domain; when members disagree, the loop takes *union*
//! bounds (verified valid by polyhedral emptiness tests) and each
//! statement keeps its residual constraints as a guard attached to its
//! leaf — the guards-instead-of-separation tradeoff discussed in
//! DESIGN.md.

use polymix_ast::tree::{Bound, BoundExpr, LinExpr, Loop, Node, Par, Program, StmtNode};
use polymix_ir::error::PolymixError;
use polymix_ir::{Schedule, Scop};
use polymix_math::{Constraint, Polyhedron};

/// Generates the loop AST implementing `schedules` (one per statement, in
/// statement order) for `scop`. Schedules outside the generator's
/// documented contract (arity mismatches, β collisions between leaves and
/// deeper statements, fusions with no expressible union bound) are
/// reported as [`PolymixError::Codegen`], never panics — callers degrade
/// to a weaker schedule.
pub fn generate(scop: &Scop, schedules: &[Schedule]) -> Result<Program, PolymixError> {
    if schedules.len() != scop.statements.len() {
        return Err(PolymixError::codegen(
            &scop.name,
            format!(
                "{} schedules for {} statements",
                schedules.len(),
                scop.statements.len()
            ),
        ));
    }
    let p = scop.n_params();
    let mut items: Vec<GenItem> = Vec::with_capacity(schedules.len());
    for (idx, (stmt, sched)) in scop.statements.iter().zip(schedules).enumerate() {
        if let Err(e) = sched.check() {
            return Err(PolymixError::codegen(
                &scop.name,
                format!("invalid schedule for {}: {e}", stmt.name),
            ));
        }
        if sched.dim() != stmt.dim {
            return Err(PolymixError::codegen(
                &scop.name,
                format!(
                    "schedule arity {} for statement {} of depth {}",
                    sched.dim(),
                    stmt.name,
                    stmt.dim
                ),
            ));
        }
        items.push(GenItem {
            stmt_idx: idx,
            dim: stmt.dim,
            sched: sched.clone(),
            tdom: sched.transformed_domain(&stmt.domain, p),
            guards: Vec::new(),
        });
    }
    let mut gen = Gen {
        scop,
        n_params: p,
        next_var: 0,
    };
    let nodes = gen.build(items, 0, &[])?;
    Ok(Program {
        scop: scop.clone(),
        body: seq_or_single(nodes),
        n_vars: gen.next_var,
    })
}

/// The identity program: the SCoP under its original schedules. This is
/// the last rung of every fallback chain — original textual order is
/// always legal, so an error here means the SCoP itself is malformed.
pub fn original_program(scop: &Scop) -> Result<Program, PolymixError> {
    let schedules: Vec<Schedule> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
    generate(scop, &schedules)
}

struct GenItem {
    stmt_idx: usize,
    dim: usize,
    sched: Schedule,
    /// Transformed domain over `[y_0..y_{dim-1} | params]`.
    tdom: Polyhedron,
    /// Residual guard expressions accumulated along the path.
    guards: Vec<LinExpr>,
}

struct Gen<'a> {
    scop: &'a Scop,
    n_params: usize,
    next_var: usize,
}

fn seq_or_single(mut nodes: Vec<Node>) -> Node {
    if nodes.len() == 1 {
        match nodes.pop() {
            Some(n) => n,
            None => Node::Seq(nodes),
        }
    } else {
        Node::Seq(nodes)
    }
}

impl Gen<'_> {
    /// Builds the node list for `items` at loop level `k`, with
    /// `outer_vars[j]` the AST variable of loop level `j < k`.
    fn build(
        &mut self,
        items: Vec<GenItem>,
        k: usize,
        outer_vars: &[usize],
    ) -> Result<Vec<Node>, PolymixError> {
        // Group by β_k, keeping ascending β order.
        let mut groups: Vec<(i64, Vec<GenItem>)> = Vec::new();
        for it in items {
            let b = it.sched.beta[k];
            match groups.iter_mut().find(|(v, _)| *v == b) {
                Some((_, g)) => g.push(it),
                None => {
                    groups.push((b, vec![it]));
                }
            }
        }
        groups.sort_by_key(|(b, _)| *b);

        let mut out = Vec::new();
        for (_, group) in groups {
            // Leaves (dim == k) may share a β slot only with other
            // leaves: their timestamps end here, so any relative order is
            // consistent with legality (dependences between them were
            // necessarily satisfied at outer positions); emit them in
            // statement order. A leaf sharing a slot with a *deeper*
            // statement would have ambiguous interleaving — rejected.
            if group.iter().any(|it| it.dim == k) {
                if !group.iter().all(|it| it.dim == k) {
                    return Err(PolymixError::codegen(
                        &self.scop.name,
                        format!(
                            "β collision between a leaf and deeper statements at level {k}"
                        ),
                    ));
                }
                let mut leaves = group;
                leaves.sort_by_key(|it| it.stmt_idx);
                for it in leaves {
                    out.push(self.leaf(it, outer_vars)?);
                }
                continue;
            }
            out.push(self.loop_at(group, k, outer_vars)?);
        }
        Ok(out)
    }

    /// Emits the loop at level `k` for a fused group.
    fn loop_at(
        &mut self,
        mut group: Vec<GenItem>,
        k: usize,
        outer_vars: &[usize],
    ) -> Result<Node, PolymixError> {
        let var = self.next_var;
        self.next_var += 1;
        let mut vars: Vec<usize> = outer_vars.to_vec();
        vars.push(var);

        // Per-statement bounds at this level.
        let mut per_stmt: Vec<StmtBounds> = Vec::new();
        for it in &group {
            // Project the transformed domain onto levels 0..=k (+ params)
            // and drop redundant rows — every surviving bound becomes a
            // max/min term in the generated loop header.
            let proj = it.tdom.project_keep(k + 1, it.dim).simplify();
            let b = proj.bounds(k, it.dim);
            let conv = |e: &polymix_math::AffineExpr| -> Result<BoundExpr, PolymixError> {
                Ok(BoundExpr {
                    expr: self.row_to_linexpr(&e.row, &vars, it.dim)?,
                    denom: e.denom,
                })
            };
            per_stmt.push(StmtBounds {
                lower: b.lower.iter().map(conv).collect::<Result<_, _>>()?,
                upper: b.upper.iter().map(conv).collect::<Result<_, _>>()?,
            });
        }

        // Union bounds: candidate expressions valid for every statement.
        let all_same = per_stmt
            .windows(2)
            .all(|w| w[0].lower == w[1].lower && w[0].upper == w[1].upper);
        let (lo, hi) = if all_same {
            (
                Bound {
                    exprs: per_stmt[0].lower.clone(),
                },
                Bound {
                    exprs: per_stmt[0].upper.clone(),
                },
            )
        } else {
            let (lo, hi) = self.union_bounds(&group, k, &per_stmt, &vars)?;
            // Residual guards: each statement keeps the bounds the union
            // loop does not already enforce. A bound expression that is
            // *itself* part of the chosen union bound is redundant — the
            // loop clamps to it for every statement — so only the
            // genuinely narrower constraints survive as guards.
            for (it, b) in group.iter_mut().zip(&per_stmt) {
                for be in &b.lower {
                    if lo.exprs.contains(be) {
                        continue;
                    }
                    // y_k >= ceil(e/q)  ⇔  q·y_k - e >= 0
                    let g = LinExpr::var(var)
                        .scale(be.denom)
                        .add_scaled(&be.expr, -1);
                    if !it.guards.contains(&g) {
                        it.guards.push(g);
                    }
                }
                for be in &b.upper {
                    if hi.exprs.contains(be) {
                        continue;
                    }
                    // y_k <= floor(e/q)  ⇔  e - q·y_k >= 0
                    let g = be.expr.add_scaled(&LinExpr::var(var).scale(be.denom), -1);
                    if !it.guards.contains(&g) {
                        it.guards.push(g);
                    }
                }
            }
            (lo, hi)
        };

        let body_nodes = self.build(group, k + 1, &vars)?;
        Ok(Node::loop_(Loop {
            var,
            name: format!("c{}", k + 1),
            lo,
            hi,
            step: 1,
            par: Par::Seq,
            body: seq_or_single(body_nodes),
        }))
    }

    /// Finds valid union bounds from the per-statement candidates: a
    /// lower (upper) candidate is kept when it bounds *every* statement's
    /// domain, verified by an emptiness query. When one side has no
    /// direct candidate (e.g. fusing a reversed loop with a forward one),
    /// a sound bound is synthesized from the other side:
    /// `Σ_s l_s − (n−1)·u` is ≤ every `l_s` whenever `u ≥ every l_s`
    /// (and dually for uppers), so any valid opposite-side bound closes
    /// the gap. Errors only when *neither* side has a direct candidate.
    fn union_bounds(
        &self,
        group: &[GenItem],
        k: usize,
        per_stmt: &[StmtBounds],
        vars: &[usize],
    ) -> Result<(Bound, Bound), PolymixError> {
        let collect = |lower: bool| -> Vec<BoundExpr> {
            let mut valid: Vec<BoundExpr> = Vec::new();
            let mut candidates: Vec<(usize, BoundExpr)> = Vec::new();
            for (si, b) in per_stmt.iter().enumerate() {
                let list = if lower { &b.lower } else { &b.upper };
                for be in list {
                    candidates.push((si, be.clone()));
                }
            }
            'cand: for (origin, be) in &candidates {
                for (si, it) in group.iter().enumerate() {
                    if si == *origin {
                        continue;
                    }
                    if !self.expr_bounds_stmt(it, k, be, lower, vars) {
                        continue 'cand;
                    }
                }
                if !valid.contains(be) {
                    valid.push(be.clone());
                }
            }
            valid
        };
        let mut lows = collect(true);
        let mut ups = collect(false);
        let n = group.len() as i64;
        let fail = |detail: String| PolymixError::codegen(&self.scop.name, detail);
        let synth = |own_first: &dyn Fn(&StmtBounds) -> Option<&BoundExpr>,
                     other: &BoundExpr|
         -> Result<BoundExpr, PolymixError> {
            let mut e = LinExpr::con(0);
            for b in per_stmt {
                let be = own_first(b)
                    .ok_or_else(|| fail(format!("statement without bound at level {k}")))?;
                if be.denom != 1 {
                    return Err(fail(format!("divided bound in union fallback at level {k}")));
                }
                e = e.add(&be.expr);
            }
            if other.denom != 1 {
                return Err(fail(format!("divided bound in union fallback at level {k}")));
            }
            e = e.add_scaled(&other.expr, -(n - 1));
            Ok(BoundExpr { expr: e, denom: 1 })
        };
        if lows.is_empty() {
            let u = ups
                .first()
                .ok_or_else(|| {
                    fail(format!("union bounds: no candidate on either side at level {k}"))
                })?
                .clone();
            let cand = synth(&|b: &StmtBounds| b.lower.first(), &u)?;
            let ok = group
                .iter()
                .all(|it| self.expr_bounds_stmt(it, k, &cand, true, vars));
            if !ok {
                return Err(fail(format!(
                    "synthesized union lower bound invalid at level {k}"
                )));
            }
            lows.push(cand);
        }
        if ups.is_empty() {
            let l = match lows.first() {
                Some(l) => l.clone(),
                None => {
                    return Err(fail(format!(
                        "union bounds: no candidate on either side at level {k}"
                    )))
                }
            };
            let cand = synth(&|b: &StmtBounds| b.upper.first(), &l)?;
            let ok = group
                .iter()
                .all(|it| self.expr_bounds_stmt(it, k, &cand, false, vars));
            if !ok {
                return Err(fail(format!(
                    "synthesized union upper bound invalid at level {k}"
                )));
            }
            ups.push(cand);
        }
        Ok((Bound { exprs: lows }, Bound { exprs: ups }))
    }

    /// back to domain-space rows through the level↔var mapping.
    fn expr_bounds_stmt(
        &self,
        it: &GenItem,
        k: usize,
        be: &BoundExpr,
        lower: bool,
        vars: &[usize],
    ) -> bool {
        let d = it.dim;
        let n = d + self.n_params;
        // Row for e over [y | params | 1].
        let mut e_row = vec![0i64; n + 1];
        for &(v, c) in &be.expr.var_coeffs {
            let Some(level) = vars.iter().position(|&x| x == v) else {
                return false; // references a variable outside this nest
            };
            if level >= d {
                return false;
            }
            e_row[level] += c;
        }
        for &(p, c) in &be.expr.param_coeffs {
            e_row[d + p] += c;
        }
        e_row[n] += be.expr.c;
        // Violation system: q·y_k < e (lower) / q·y_k > e (upper).
        let mut viol = it.tdom.clone();
        let mut row = vec![0i64; n + 1];
        if lower {
            // q·y_k <= e - 1  ⇔  e - q·y_k - 1 >= 0
            row.clone_from_slice(&e_row);
            row[k] -= be.denom;
            row[n] -= 1;
        } else {
            // q·y_k >= e + 1  ⇔  q·y_k - e - 1 >= 0
            for (dst, &src) in row.iter_mut().zip(&e_row) {
                *dst = -src;
            }
            row[k] += be.denom;
            row[n] -= 1;
        }
        viol.add(Constraint::ge(row));
        viol.is_empty()
    }

    /// Emits the leaf for one statement: the `Stmt` node with its inverse-
    /// schedule iterator expressions, wrapped in residual guards if any.
    fn leaf(&mut self, it: GenItem, outer_vars: &[usize]) -> Result<Node, PolymixError> {
        let d = it.dim;
        if outer_vars.len() < d {
            return Err(PolymixError::codegen(
                &self.scop.name,
                format!("statement {} deeper than its loop path", it.stmt_idx),
            ));
        }
        // x = α⁻¹ (y - γ).
        let iter_exprs: Vec<LinExpr> = if d == 0 {
            Vec::new()
        } else {
            let ainv = it.sched.alpha.inverse_unimodular();
            (0..d)
                .map(|i| {
                    let mut e = LinExpr::con(0);
                    for j in 0..d {
                        let a = ainv[(i, j)];
                        if a == 0 {
                            continue;
                        }
                        e = e.add_scaled(&LinExpr::var(outer_vars[j]), a);
                        // minus a * γ_j
                        for (pk, &g) in it.sched.gamma[j][..self.n_params].iter().enumerate() {
                            if g != 0 {
                                e = e.add_scaled(&LinExpr::param(pk), -a * g);
                            }
                        }
                        e = e.plus(-a * it.sched.gamma[j][self.n_params]);
                    }
                    e
                })
                .collect()
        };
        let stmt = Node::Stmt(StmtNode {
            stmt_idx: it.stmt_idx,
            iter_exprs,
        });
        Ok(if it.guards.is_empty() {
            stmt
        } else {
            Node::Guard(it.guards, Box::new(stmt))
        })
    }

    /// Converts a projected-bound row over `[y_0..y_{d-1} | params | 1]`
    /// into a `LinExpr` over the outer AST variables.
    fn row_to_linexpr(
        &self,
        row: &[i64],
        vars: &[usize],
        d: usize,
    ) -> Result<LinExpr, PolymixError> {
        let mut e = LinExpr::con(row[d + self.n_params]);
        for (level, &c) in row[..d].iter().enumerate() {
            if c != 0 {
                if level >= vars.len() {
                    return Err(PolymixError::codegen(
                        &self.scop.name,
                        format!("bound references not-yet-generated level {level}"),
                    ));
                }
                e = e.add_scaled(&LinExpr::var(vars[level]), c);
            }
        }
        for (pk, &c) in row[d..d + self.n_params].iter().enumerate() {
            if c != 0 {
                e = e.add_scaled(&LinExpr::param(pk), c);
            }
        }
        Ok(e)
    }
}

/// Per-statement lower/upper bound expressions at one loop level.
struct StmtBounds {
    lower: Vec<BoundExpr>,
    upper: Vec<BoundExpr>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::interp::{alloc_arrays, execute};
    use polymix_ast::pretty::render;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::{BinOp, Expr};

    fn matmul_scop() -> Scop {
        let mut b = ScopBuilder::new("mm", &["N"], &[5]);
        let c = b.array("C", &["N", "N"]);
        let a = b.array("A", &["N", "N"]);
        let bb = b.array("B", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        b.stmt("Z", c, &[ix("i"), ix("j")], Expr::Const(0.0));
        b.enter("k", con(0), par("N"));
        let prod = Expr::mul(b.rd(a, &[ix("i"), ix("k")]), b.rd(bb, &[ix("k"), ix("j")]));
        b.stmt_update("U", c, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    fn run(scop: &Scop, schedules: &[Schedule], n: i64) -> Vec<Vec<f64>> {
        let prog = generate(scop, schedules).expect("generate");
        let mut arrays = alloc_arrays(scop, &[n]);
        // Initialize inputs deterministically.
        for (ai, arr) in arrays.iter_mut().enumerate() {
            for (k, x) in arr.iter_mut().enumerate() {
                *x = ((ai * 31 + k * 7) % 13) as f64;
            }
        }
        execute(&prog, &[n], &mut arrays);
        arrays
    }

    #[test]
    fn identity_schedule_reproduces_original_semantics() {
        let scop = matmul_scop();
        let schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let out = run(&scop, &schedules, 5);
        // Spot-check one element against a direct computation.
        let n = 5usize;
        let at = |ai: usize, i: usize, j: usize| ((ai * 31 + (i * n + j) * 7) % 13) as f64;
        let mut c00 = 0.0;
        for k in 0..n {
            c00 += at(1, 0, k) * at(2, k, 0);
        }
        assert_eq!(out[0][0], c00);
    }

    #[test]
    fn permuted_schedule_gives_same_result() {
        let scop = matmul_scop();
        let p = 1;
        let mut schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        // Distribute Z from U (Z must finish zeroing before any permuted
        // U instance touches a cell), then permute U's loops to (k, i, j).
        // Per C-cell the k order stays increasing in every permutation, so
        // the f64 result is bit-identical to the original.
        schedules[0].beta = vec![0, 0, 0];
        schedules[1] = Schedule {
            beta: vec![1, 0, 0, 0],
            ..Schedule::from_permutation(&[2, 0, 1], p)
        };
        let base: Vec<Schedule> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let a = run(&scop, &base, 5);
        let b = run(&scop, &schedules, 5);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn distribution_via_beta_change() {
        let scop = matmul_scop();
        // Distribute Z and U into separate nests: Z gets β0 = 0, U β0 = 1.
        let mut schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        schedules[0].beta = vec![0, 0, 0];
        schedules[1].beta = vec![1, 0, 0, 0];
        let base: Vec<Schedule> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let a = run(&scop, &base, 4);
        let b = run(&scop, &schedules, 4);
        assert_eq!(a[0], b[0]);
        // The rendered tree must have two top-level loops.
        let prog = generate(&scop, &schedules).expect("generate");
        let txt = render(&prog);
        assert_eq!(txt.matches("for c1 =").count(), 2, "{txt}");
    }

    #[test]
    fn shifted_fusion_generates_union_bounds_and_guards() {
        // Two statements over i in [0,N) fused with U shifted by +2:
        // loop runs [0, N+1] with guards.
        let mut b = ScopBuilder::new("shift", &["N"], &[6]);
        let x = b.array("X", &["N"]);
        let y = b.array_dims("Y", vec![par("N") + con(2)]);
        b.enter("i", con(0), par("N"));
        b.stmt("P", x, &[ix("i")], Expr::Const(3.0));
        b.exit();
        b.enter("i", con(0), par("N"));
        let rd = b.rd(x, &[ix("i")]);
        b.stmt("Q", y, &[ix("i") + con(2)], rd);
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mut schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        // Fuse (same β) with Q shifted by +2: Q(i) runs at time i+2.
        schedules[0].beta = vec![0, 0];
        schedules[1].beta = vec![0, 1];
        schedules[1].shift_level(0, &[0], 2);
        let prog = generate(&scop, &schedules).expect("generate");
        let txt = render(&prog);
        assert_eq!(txt.matches("for c1 =").count(), 1, "{txt}");
        assert!(txt.contains("if"), "expected guards: {txt}");
        // Semantics: Y[i+2] = X[i] = 3 for all i; but X[i] is written at
        // time i and read at time i+2 — the shift keeps the order legal.
        let mut arrays = alloc_arrays(&scop, &[6]);
        execute(&prog, &[6], &mut arrays);
        assert_eq!(arrays[0], vec![3.0; 6]);
        assert_eq!(arrays[1][2..8], vec![3.0; 6][..]);
    }

    #[test]
    fn original_program_roundtrip_depth() {
        let scop = matmul_scop();
        let prog = original_program(&scop).expect("generate");
        let txt = render(&prog);
        // One outer i loop, one j loop, Z leaf, one k loop, U leaf.
        assert_eq!(txt.matches("for").count(), 3, "{txt}");
        assert_eq!(prog.body.count_stmts(), 2);
    }

    #[test]
    fn reversal_schedule_executes_correctly() {
        // for i: X[i] = i  reversed still writes every cell.
        let mut b = ScopBuilder::new("rev", &["N"], &[7]);
        let x = b.array("X", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S", x, &[ix("i")], Expr::Iter(0));
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mut schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        schedules[0].reverse_level(0);
        let prog = generate(&scop, &schedules).expect("generate");
        let mut arrays = alloc_arrays(&scop, &[7]);
        execute(&prog, &[7], &mut arrays);
        assert_eq!(arrays[0], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn skewed_schedule_generates_triangular_bounds() {
        // 2-D nest skewed: y1 = i + j.
        let mut b = ScopBuilder::new("skew", &["N"], &[4]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let rd = b.rd(a, &[ix("i"), ix("j")]);
        let body = Expr::add(rd, Expr::Const(1.0));
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mut schedules: Vec<Schedule> =
            scop.statements.iter().map(|s| s.schedule.clone()).collect();
        schedules[0].skew(1, 0, 1);
        let prog = generate(&scop, &schedules).expect("generate");
        let mut arrays = alloc_arrays(&scop, &[4]);
        execute(&prog, &[4], &mut arrays);
        assert_eq!(arrays[0], vec![1.0; 16]);
        let txt = render(&prog);
        assert!(txt.contains("c1"), "{txt}");
    }
}
