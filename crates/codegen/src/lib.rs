//! # polymix-codegen
//!
//! Code generation for polymix, in two halves:
//!
//! * [`from_poly`] — the CLooG-lite polyhedral code generator: turns a
//!   SCoP plus one `2d+1` schedule per statement into a loop AST
//!   ([`polymix_ast::Program`]). Loop bounds come from Fourier–Motzkin
//!   projection of each statement's transformed domain; statement
//!   interleaving follows the β-tree; statements whose domains are
//!   narrower than the fused loop's union bounds receive residual guards
//!   (instead of CLooG's polyhedral separation — see DESIGN.md).
//! * [`emit`] — the Rust backend: renders a program (optionally with
//!   parallel annotations) as a standalone `main.rs` that allocates and
//!   initializes arrays, runs the kernel under `std::time`, and prints a
//!   checksum plus GFLOP/s. Doall loops become chunked scoped threads,
//!   reduction loops use thread-private accumulators, and pipeline loop
//!   pairs become column-block point-to-point synchronization — the
//!   runtime constructs of Sec. IV-D, inlined so the generated file
//!   compiles with plain `rustc -O`.

pub mod emit;
pub mod from_poly;
pub mod opt;

pub use emit::{emit_rust, EmitOptions};
pub use from_poly::{generate, original_program};
pub use opt::{mark_parallelism, nest_infos, register_tile, skew_nest_for_tilability, NestInfo};
