//! Rust source emission: renders a [`Program`] as a standalone `main.rs`
//! compilable with plain `rustc -O`.
//!
//! The emitted file contains the parameter constants, array allocation and
//! (kernel-specific or default) initialization, the kernel itself, timing,
//! a checksum over every written array, and a GFLOP/s line computed from
//! the caller-supplied FLOP count. Parallel annotations map to inlined
//! runtime constructs (the Sec. IV-D extensions):
//!
//! * [`Par::Doall`] — chunked `std::thread::scope` workers;
//! * [`Par::Reduction`] — thread-private copies of the reduced arrays,
//!   combined additively after the join;
//! * [`Par::Pipeline`] — column-block decomposition of the next-inner
//!   loop with point-to-point progress counters (`AtomicI64` + spin),
//!   the OpenMP `await source(i-1,j) source(i,j-1)` analogue.
//!
//! Kernel array accesses go through raw pointers (as OpenMP-generated C
//! does); the sequential and parallel variants share the same accessors so
//! compiler-side differences between variants come only from loop
//! structure — the property the paper's comparison depends on.

use polymix_ast::tree::{Bound, LinExpr, Loop, Node, Par, Program};
use polymix_ir::expr::{Expr, UnOp};
use std::collections::HashMap;
use std::fmt::Write;

/// Options controlling emission.
#[derive(Clone, Debug)]
pub struct EmitOptions {
    /// Concrete parameter values (emitted as `const`s).
    pub params: Vec<i64>,
    /// Total floating-point operations of one kernel run (for GFLOP/s).
    pub flops: u64,
    /// Worker-thread count for parallel loops.
    pub threads: usize,
    /// Kernel-specific array initialization; receives slices named
    /// `a_<array>`. When `None` a deterministic generic formula is used.
    pub init_rust: Option<String>,
    /// Timing repetitions; the minimum time is reported.
    pub reps: usize,
    /// Pipeline publish batch: progress is published/awaited every
    /// this-many outer steps instead of every step. `None` derives the
    /// batch from the loop's step (which encodes the tile size the DL
    /// model chose): tiled outer loops already amortize per-step
    /// synchronization over a whole tile row, so they get batch 1, while
    /// untiled (step-1) pipelines batch up to 8 rows per publish.
    pub pipeline_batch: Option<i64>,
    /// Chunk-claiming grain for dynamically scheduled doalls. `None`
    /// derives the grain at runtime from the span (targeting ~8 chunks
    /// per worker, the same policy as `polymix-runtime`).
    pub dyn_grain: Option<i64>,
    /// Lower wavefront-annotated nests to the tile task-graph protocol
    /// (per-tile dependence counters claimed from a topological cursor
    /// inside one thread scope) instead of the diagonal-barrier loop
    /// (a fresh scope joined per diagonal). Same execution order —
    /// every tile still waits for the whole previous weighted diagonal
    /// — but workers flow across diagonal boundaries without a gang
    /// barrier, which pays off on triangular/skewed spaces whose
    /// diagonals are too short to amortize a spawn/join each.
    pub taskgraph: bool,
    /// The explicit intra-tile vectorization post-pass (the paper's
    /// `vect` configuration made explicit): loop variables listed here
    /// have their loops — when innermost, stride-1, and not themselves a
    /// multi-thread parallel region — emitted as an unrolled strided
    /// group of [`VECT_WIDTH`] independent lane blocks plus a scalar
    /// remainder loop, a shape LLVM's auto-vectorizer packs without any
    /// nightly `std::simd`. Callers are expected to pass only
    /// doall-certified loop variables (`polymix-verify`'s
    /// `vectorizable_inner_vars`); the emission itself preserves lane
    /// order, so a miscertified variable degrades to a plain unroll
    /// rather than a miscompile.
    pub vect: Option<Vec<usize>>,
}

/// Lane count of the explicit vectorization post-pass (f64 lanes of one
/// 256-bit vector register).
pub const VECT_WIDTH: i64 = 4;

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions {
            params: Vec::new(),
            flops: 0,
            threads: 1,
            init_rust: None,
            reps: 1,
            pipeline_batch: None,
            dyn_grain: None,
            taskgraph: false,
            vect: None,
        }
    }
}

struct Emitter<'a> {
    prog: &'a Program,
    opts: &'a EmitOptions,
    out: String,
    indent: usize,
    names: HashMap<usize, String>,
    region: usize,
}

/// Emits the standalone Rust program.
pub fn emit_rust(prog: &Program, opts: &EmitOptions) -> String {
    assert_eq!(opts.params.len(), prog.scop.params.len());
    let mut names = HashMap::new();
    collect_loop_names(&prog.body, &mut names);
    let mut e = Emitter {
        prog,
        opts,
        out: String::new(),
        indent: 0,
        names,
        region: 0,
    };
    e.header();
    e.main();
    e.out
}

fn collect_loop_names(node: &Node, names: &mut HashMap<usize, String>) {
    match node {
        Node::Seq(xs) => xs.iter().for_each(|x| collect_loop_names(x, names)),
        Node::Guard(_, b) => collect_loop_names(b, names),
        Node::Loop(l) => {
            let base = sanitize(&l.name);
            let mut name = format!("v_{base}");
            let mut k = 0;
            while names.values().any(|n| *n == name) {
                k += 1;
                name = format!("v_{base}_{k}");
            }
            names.insert(l.var, name);
            collect_loop_names(&l.body, names);
        }
        Node::Stmt(_) => {}
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn bound_refs_var(b: &Bound, var: usize) -> bool {
    b.exprs.iter().any(|be| be.expr.coeff_of(var) != 0)
}

/// Whether any bound or guard nested under `l` depends on `l`'s own
/// variable — i.e. the per-iteration work varies across the range (a
/// triangular/skewed nest). Static blocks load-imbalance such spaces, so
/// the doall emitter switches to dynamic chunk claiming.
fn nest_is_nonrectangular(l: &Loop) -> bool {
    fn walk(node: &Node, var: usize, dep: &mut bool) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| walk(x, var, dep)),
            Node::Guard(gs, b) => {
                if gs.iter().any(|g| g.coeff_of(var) != 0) {
                    *dep = true;
                }
                walk(b, var, dep);
            }
            Node::Loop(il) => {
                if bound_refs_var(&il.lo, var) || bound_refs_var(&il.hi, var) {
                    *dep = true;
                }
                walk(&il.body, var, dep);
            }
            Node::Stmt(_) => {}
        }
    }
    let mut dep = false;
    walk(&l.body, l.var, &mut dep);
    dep
}

impl Emitter<'_> {
    fn pad(&self) -> String {
        "    ".repeat(self.indent)
    }

    fn line(&mut self, s: &str) {
        let pad = self.pad();
        let _ = writeln!(self.out, "{pad}{s}");
    }

    fn param_const(&self, p: usize) -> String {
        format!("P_{}", sanitize(&self.prog.scop.params[p]).to_uppercase())
    }

    fn arr_name(&self, a: usize) -> String {
        format!("a_{}", sanitize(&self.prog.scop.arrays[a].name).to_lowercase())
    }

    fn ptr_name(&self, a: usize) -> String {
        format!("p_{}", sanitize(&self.prog.scop.arrays[a].name).to_lowercase())
    }

    fn var_name(&self, v: usize) -> String {
        self.names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("v{v}"))
    }

    fn lin(&self, e: &LinExpr) -> String {
        let mut parts: Vec<String> = Vec::new();
        for &(v, c) in &e.var_coeffs {
            parts.push(coef_term(c, &self.var_name(v), parts.is_empty()));
        }
        for &(p, c) in &e.param_coeffs {
            parts.push(coef_term(c, &self.param_const(p), parts.is_empty()));
        }
        if e.c != 0 || parts.is_empty() {
            if parts.is_empty() {
                parts.push(format!("{}", e.c));
            } else if e.c > 0 {
                parts.push(format!(" + {}", e.c));
            } else {
                parts.push(format!(" - {}", -e.c));
            }
        }
        parts.concat()
    }

    fn bound(&self, b: &Bound, lower: bool) -> String {
        let parts: Vec<String> = b
            .exprs
            .iter()
            .map(|be| {
                let e = self.lin(&be.expr);
                if be.denom == 1 {
                    format!("({e})")
                } else if lower {
                    format!("cdiv({e}, {})", be.denom)
                } else {
                    format!("fdiv({e}, {})", be.denom)
                }
            })
            .collect();
        let mut it = parts.into_iter();
        let first = it.next().expect("empty bound");
        it.fold(first, |acc, x| {
            if lower {
                format!("{acc}.max({x})")
            } else {
                format!("{acc}.min({x})")
            }
        })
    }

    fn header(&mut self) {
        self.line("// Auto-generated by polymix-codegen. Do not edit.");
        self.line("#![allow(unused_mut, unused_variables, unused_parens, dead_code, unused_imports, unused_unsafe)]");
        self.line("#![allow(clippy::all)]");
        self.line("use std::time::Instant;");
        self.line("use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};");
        self.line("");
        for (p, &v) in self.opts.params.iter().enumerate() {
            let c = self.param_const(p);
            self.line(&format!("const {c}: i64 = {v};"));
        }
        self.line(&format!("const THREADS: usize = {};", self.opts.threads));
        self.line("");
        self.line("#[inline(always)] fn cdiv(a: i64, b: i64) -> i64 { -((-a).div_euclid(b)) }");
        self.line("#[inline(always)] fn fdiv(a: i64, b: i64) -> i64 { a.div_euclid(b) }");
        // Poisonable progress protocol (same as polymix-runtime): a
        // panicking worker floods POISON through the progress counters
        // and raises POISONED, so no waiter spins forever on a dead
        // neighbor; main() then exits 101 with a runtime_error line
        // instead of printing a checksum from a half-computed kernel.
        self.line("const POISON: i64 = i64::MAX;");
        self.line("static POISONED: AtomicBool = AtomicBool::new(false);");
        // Progress counters (and dynamic-schedule claim cursors) live on
        // their own cache lines: the neighbor-polled fetch_max publish is
        // the hottest cross-thread store in a pipelined kernel, and
        // unpadded Vec<AtomicI64> counters put eight of them on one line.
        self.line("#[repr(align(64))] struct Pad(AtomicI64);");
        self.line("#[allow(dead_code)]");
        self.line("fn poison(progress: &[Pad], what: &str) {");
        self.line("    POISONED.store(true, Ordering::Release);");
        self.line("    for c in progress { c.0.store(POISON, Ordering::Release); }");
        self.line("    eprintln!(\"runtime_error: {what}\");");
        self.line("}");
        // Worker wrapper: catches unwinds at the worker boundary and
        // poisons the run (the closure returns false when it exited
        // early because someone else poisoned it).
        self.line("#[allow(dead_code)]");
        self.line("fn contained<F: FnOnce() -> bool>(progress: &[Pad], f: F) {");
        self.line("    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {");
        self.line("        Ok(_) => {}");
        self.line("        Err(p) => {");
        self.line("            let msg = if let Some(s) = p.downcast_ref::<&str>() { (*s).to_string() }");
        self.line("                else if let Some(s) = p.downcast_ref::<String>() { s.clone() }");
        self.line("                else { \"worker panic\".to_string() };");
        self.line("            poison(progress, &msg);");
        self.line("        }");
        self.line("    }");
        self.line("}");
        // Spin budget before a waiter starts yielding; POLYMIX_SPIN_LIMIT
        // overrides (0 is valid: skip straight to yielding).
        self.line("#[allow(dead_code)]");
        self.line("fn spin_limit() -> u32 {");
        self.line("    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();");
        self.line("    *LIMIT.get_or_init(|| std::env::var(\"POLYMIX_SPIN_LIMIT\").ok()");
        self.line("        .and_then(|s| s.trim().parse::<u32>().ok()).unwrap_or(1024))");
        self.line("}");
        // Pipeline wait: bounded spin then yield, so oversubscribed
        // waiters cannot starve the producing thread (same policy as
        // polymix-runtime's pipeline_2d). Returns false when the run
        // was poisoned — the waiting worker must bail out.
        //
        // Flush-on-block: progress publishes are batched (every
        // PIPE_BATCH steps), and the emitted pipelines await in *both*
        // directions, so a blocked waiter publishes its own completed
        // progress once before settling into the yield loop. That makes
        // the blocked-waiter graph follow the true data dependences
        // (acyclic), so batching can never deadlock a pair of workers
        // each sitting on an unpublished batch the other needs.
        self.line("#[allow(dead_code)]");
        self.line("#[inline] fn await_progress(cell: &AtomicI64, target: i64, own: &AtomicI64, own_done: i64) -> bool {");
        self.line("    let mut spins = 0u32;");
        self.line("    let limit = spin_limit();");
        self.line("    let mut flushed = false;");
        self.line("    loop {");
        self.line("        let v = cell.load(Ordering::Acquire);");
        self.line("        if v == POISON { return false; }");
        self.line("        if v >= target { return true; }");
        self.line("        if spins < limit { spins += 1; std::hint::spin_loop(); }");
        self.line("        else if POISONED.load(Ordering::Acquire) { return false; }");
        self.line("        else {");
        self.line("            if !flushed { own.fetch_max(own_done, Ordering::AcqRel); flushed = true; }");
        self.line("            std::thread::yield_now();");
        self.line("        }");
        self.line("    }");
        self.line("}");
        // Task-graph wait: a tile's dependence counter drains to zero
        // when every predecessor tile completed. POISON (i64::MAX) is
        // flooded through the counters on failure, so the first load
        // must distinguish it from a genuine pending count; a waiter
        // whose spin budget runs out checks the POISONED flag before
        // settling into the yield loop. Deadlock-free by construction:
        // tiles are claimed from the cursor in topological order, so
        // the lowest unfinished claimed tile always has every
        // predecessor finished.
        self.line("#[allow(dead_code)]");
        self.line("#[inline] fn await_zero(cell: &AtomicI64) -> bool {");
        self.line("    let mut spins = 0u32;");
        self.line("    let limit = spin_limit();");
        self.line("    loop {");
        self.line("        let v = cell.load(Ordering::Acquire);");
        self.line("        if v == POISON { return false; }");
        self.line("        if v <= 0 { return true; }");
        self.line("        if spins < limit { spins += 1; std::hint::spin_loop(); }");
        self.line("        else if POISONED.load(Ordering::Acquire) { return false; }");
        self.line("        else { std::thread::yield_now(); }");
        self.line("    }");
        self.line("}");
        self.line("#[derive(Clone, Copy)] struct P(*mut f64);");
        self.line("unsafe impl Send for P {}");
        self.line("unsafe impl Sync for P {}");
        self.line("impl P {");
        self.line("    // Method receiver forces whole-struct closure capture under");
        self.line("    // edition-2021 disjoint capture (field access would capture the");
        self.line("    // raw pointer itself, which is not Send).");
        self.line("    #[inline(always)] fn get(self) -> *mut f64 { self.0 }");
        self.line("}");
        self.line("");
    }

    fn main(&mut self) {
        let scop = &self.prog.scop;
        self.line("fn main() {");
        self.indent += 1;
        // Allocation.
        for (ai, arr) in scop.arrays.iter().enumerate() {
            let len = self.extent_product(ai);
            let n = self.arr_name(ai);
            self.line(&format!(
                "let mut {n}: Vec<f64> = vec![0.0f64; ({len}).max(1) as usize]; // {}",
                arr.name
            ));
        }
        // Init.
        self.line("// --- initialization ---");
        match &self.opts.init_rust {
            Some(code) => {
                for l in code.lines() {
                    self.line(l);
                }
            }
            None => {
                for ai in 0..scop.arrays.len() {
                    let n = self.arr_name(ai);
                    self.line(&format!(
                        "for k in 0..{n}.len() {{ {n}[k] = (((k as i64) * 7 + {ai} * 13) % 1024) as f64 / 1024.0; }}"
                    ));
                }
            }
        }
        // Pointers.
        self.line("// --- kernel ---");
        for ai in 0..scop.arrays.len() {
            let n = self.arr_name(ai);
            let p = self.ptr_name(ai);
            self.line(&format!("let {p}: *mut f64 = {n}.as_mut_ptr();"));
        }
        self.line("let mut best = f64::INFINITY;");
        self.line(&format!("for _rep in 0..{} {{", self.opts.reps.max(1)));
        self.indent += 1;
        self.line("let t0 = Instant::now();");
        self.line("unsafe {");
        self.indent += 1;
        let body = self.prog.body.clone();
        self.node(&body);
        self.indent -= 1;
        self.line("}");
        self.line("if POISONED.load(Ordering::Acquire) { break; }");
        self.line("let dt = t0.elapsed().as_secs_f64();");
        self.line("if dt < best { best = dt; }");
        self.indent -= 1;
        self.line("}");
        // A poisoned run must not report a checksum computed from a
        // half-executed kernel: exit non-zero so the bench runner sees a
        // kernel failure (and can degrade to a sequential re-run).
        self.line("if POISONED.load(Ordering::Acquire) {");
        self.line("    eprintln!(\"runtime_error: kernel poisoned; results discarded\");");
        self.line("    std::process::exit(101);");
        self.line("}");
        // Checksum over written arrays.
        let mut written: Vec<usize> = Vec::new();
        for st in &scop.statements {
            if !written.contains(&st.write.array.0) {
                written.push(st.write.array.0);
            }
        }
        written.sort();
        self.line("let mut checksum = 0.0f64;");
        for ai in written {
            let n = self.arr_name(ai);
            self.line(&format!(
                "for (k, &x) in {n}.iter().enumerate() {{ checksum += x * ((k % 31) as f64 + 1.0); }}"
            ));
        }
        self.line("println!(\"checksum: {:.6e}\", checksum);");
        self.line("println!(\"time_s: {:.6}\", best);");
        self.line(&format!(
            "println!(\"gflops: {{:.4}}\", {}f64 / best / 1e9);",
            self.opts.flops
        ));
        self.indent -= 1;
        self.line("}");
    }

    fn extent_product(&self, ai: usize) -> String {
        let arr = &self.prog.scop.arrays[ai];
        if arr.dims.is_empty() {
            return "1".to_string();
        }
        arr.dims
            .iter()
            .map(|row| self.extent_expr(row))
            .collect::<Vec<_>>()
            .join(" * ")
    }

    fn extent_expr(&self, row: &[i64]) -> String {
        let p = self.prog.scop.params.len();
        let mut parts: Vec<String> = Vec::new();
        for (k, &c) in row[..p].iter().enumerate() {
            if c != 0 {
                parts.push(coef_term(c, &self.param_const(k), parts.is_empty()));
            }
        }
        if row[p] != 0 || parts.is_empty() {
            if parts.is_empty() {
                parts.push(format!("{}", row[p]));
            } else if row[p] > 0 {
                parts.push(format!(" + {}", row[p]));
            } else {
                parts.push(format!(" - {}", -row[p]));
            }
        }
        format!("({})", parts.concat())
    }

    fn node(&mut self, node: &Node) {
        match node {
            Node::Seq(xs) => xs.iter().for_each(|x| self.node(x)),
            Node::Guard(gs, b) => {
                let conds: Vec<String> = gs.iter().map(|g| format!("{} >= 0", self.lin(g))).collect();
                self.line(&format!("if {} {{", conds.join(" && ")));
                self.indent += 1;
                self.node(b);
                self.indent -= 1;
                self.line("}");
            }
            Node::Loop(l) => {
                // The vect post-pass claims eligible innermost loops
                // before any parallel dispatch; it never swallows a
                // multi-thread parallel region (see `vect_applies`).
                if self.vect_applies(l) {
                    self.vect_loop(l);
                    return;
                }
                // With a single worker the parallel scaffolding (thread
                // scope, pointer laundering, progress atomics) costs real
                // performance and changes nothing: emit plain loops.
                if self.opts.threads <= 1 {
                    self.seq_loop(l);
                    return;
                }
                match l.par {
                    Par::Doall => self.doall(l),
                    Par::Reduction => self.reduction(l),
                    Par::Pipeline => self.pipeline(l),
                    Par::Wavefront if self.opts.taskgraph => self.taskgraph(l),
                    Par::Wavefront => self.wavefront(l),
                    Par::Seq => self.seq_loop(l),
                }
            }
            Node::Stmt(s) => self.stmt(s),
        }
    }

    fn seq_loop(&mut self, l: &Loop) {
        let v = self.var_name(l.var);
        let lo = self.bound(&l.lo, true);
        let hi = self.bound(&l.hi, false);
        self.line(&format!("let mut {v}: i64 = {lo};"));
        self.line(&format!("let {v}_hi: i64 = {hi};"));
        self.line(&format!("while {v} <= {v}_hi {{"));
        self.indent += 1;
        self.node(&l.body);
        self.line(&format!("{v} += {};", l.step));
        self.indent -= 1;
        self.line("}");
    }

    /// Whether the vect post-pass applies to `l`: the caller listed its
    /// variable, it is stride-1 and innermost (loop-free body), and it is
    /// not itself a multi-thread parallel region (vectorizing one would
    /// serialize it; the intra-tile loops the pass targets are the
    /// sequential innermost loops *inside* parallel regions).
    fn vect_applies(&self, l: &Loop) -> bool {
        fn loop_free(n: &Node) -> bool {
            match n {
                Node::Seq(xs) => xs.iter().all(loop_free),
                Node::Guard(_, b) => loop_free(b),
                Node::Loop(_) => false,
                Node::Stmt(_) => true,
            }
        }
        let Some(vs) = &self.opts.vect else {
            return false;
        };
        vs.contains(&l.var)
            && l.step == 1
            && loop_free(&l.body)
            && (l.par == Par::Seq || self.opts.threads <= 1)
    }

    /// Emits one vect region: a group loop advancing [`VECT_WIDTH`] at a
    /// time whose body is `VECT_WIDTH` shadowed lane blocks, then a
    /// scalar remainder loop. The `// vect region` / `// vect end`
    /// markers delimit the region for the kernel lint; they are *nested*
    /// markers — `vect` is deliberately not one of the lint's
    /// region-splitting kinds, so an enclosing doall/pipeline/taskgraph
    /// region keeps auditing its full line span.
    fn vect_loop(&mut self, l: &Loop) {
        let region = self.region;
        self.region += 1;
        let v = self.var_name(l.var);
        let lo = self.bound(&l.lo, true);
        let hi = self.bound(&l.hi, false);
        self.line(&format!(
            "// vect region {region} (width {VECT_WIDTH}, doall-certified)"
        ));
        self.line("{");
        self.indent += 1;
        self.line(&format!("let mut {v}: i64 = {lo};"));
        self.line(&format!("let {v}_hi: i64 = {hi};"));
        self.line(&format!("while {v} + {} <= {v}_hi {{", VECT_WIDTH - 1));
        self.indent += 1;
        for lane in 0..VECT_WIDTH {
            self.line("{");
            self.indent += 1;
            if lane == 0 {
                self.line(&format!("let {v} = {v};"));
            } else {
                self.line(&format!("let {v} = {v} + {lane};"));
            }
            self.node(&l.body);
            self.indent -= 1;
            self.line("}");
        }
        self.line(&format!("{v} += {VECT_WIDTH};"));
        self.indent -= 1;
        self.line("}");
        self.line("// vect remainder");
        self.line(&format!("while {v} <= {v}_hi {{"));
        self.indent += 1;
        self.node(&l.body);
        self.line(&format!("{v} += 1;"));
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.line(&format!("// vect end {region}"));
    }

    /// Scoped-thread doall: static blocks for rectangular nests, atomic
    /// chunk claiming for non-rectangular ones (per-iteration work that
    /// varies with the parallel variable would load-imbalance a static
    /// partition by design).
    fn doall(&mut self, l: &Loop) {
        let region = self.region;
        self.region += 1;
        let dynamic = nest_is_nonrectangular(l);
        let v = self.var_name(l.var);
        let lo = self.bound(&l.lo, true);
        let hi = self.bound(&l.hi, false);
        let arrays = self.all_array_ptrs();
        let kind = if dynamic { "dynamic" } else { "static" };
        self.line(&format!("// doall region {region} ({kind} schedule)"));
        self.line("{");
        self.indent += 1;
        self.line(&format!("let r_lo: i64 = {lo};"));
        self.line(&format!("let r_hi: i64 = {hi};"));
        self.line(&format!(
            "let iters: i64 = if r_hi >= r_lo {{ (r_hi - r_lo) / {} + 1 }} else {{ 0 }};",
            l.step
        ));
        self.line("let nthr: usize = THREADS.min(iters.max(1) as usize);");
        self.line("if iters > 0 {");
        self.indent += 1;
        if dynamic {
            // Grain: explicit override, else ~8 chunks per worker — fine
            // enough to rebalance a triangular nest, coarse enough that
            // the claim cursor stays off the profile.
            match self.opts.dyn_grain {
                Some(g) => self.line(&format!("let grain: i64 = {};", g.max(1))),
                None => self.line("let grain: i64 = (iters / (nthr as i64 * 8)).max(1);"),
            }
            self.line("let cursor = Pad(AtomicI64::new(0));");
            self.line("let cursor = &cursor;");
        }
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        self.line("for t in 0..nthr {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(&[], || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        if dynamic {
            // Claims are offsets into the iteration sequence, converted
            // to loop values on the loop's own stride grid.
            self.line("loop {");
            self.indent += 1;
            self.line("let off = cursor.0.fetch_add(grain, Ordering::Relaxed);");
            self.line("if off >= iters { break; }");
            self.line("let c_hi = (off + grain).min(iters);");
            self.line(&format!("let mut {v}: i64 = r_lo + off * {};", l.step));
            self.line(&format!(
                "let t_hi: i64 = r_lo + (c_hi - 1) * {};",
                l.step
            ));
            self.line(&format!("while {v} <= t_hi {{"));
            self.indent += 1;
            self.node(&l.body);
            self.line(&format!("{v} += {};", l.step));
            self.indent -= 1;
            self.line("}");
            self.indent -= 1;
            self.line("}");
        } else {
            self.line("let chunk = (iters + nthr as i64 - 1) / nthr as i64;");
            self.line(&format!(
                "let mut {v}: i64 = r_lo + (t as i64) * chunk * {};",
                l.step
            ));
            self.line(&format!(
                "let t_hi: i64 = (r_lo + ((t as i64 + 1) * chunk - 1) * {}).min(r_hi);",
                l.step
            ));
            self.line(&format!("while {v} <= t_hi {{"));
            self.indent += 1;
            self.node(&l.body);
            self.line(&format!("{v} += {};", l.step));
            self.indent -= 1;
            self.line("}");
        }
        self.line("true");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
    }

    /// Array-reduction execution with thread-private accumulators.
    ///
    /// Written arrays are classified per Sec. IV-D:
    /// * **owner-indexed** — every write's address varies with the
    ///   parallel variable with unit coefficient and depends on no inner
    ///   loop variable: iterations own disjoint cells, so threads write
    ///   the global array directly (e.g. `tmp[i] = 0; tmp[i] += …` under
    ///   a parallel `i`);
    /// * **reduced** — every write is an associative `+=` update whose
    ///   address is invariant in the parallel variable: threads
    ///   accumulate into zeroed private copies, combined additively after
    ///   the join (e.g. `y[j] += …` under a parallel `i`).
    ///
    /// Anything else (mixed shapes, reads of partial reductions) falls
    /// back to sequential execution of the loop — correctness first.
    fn reduction(&mut self, l: &Loop) {
        let region = self.region;
        self.region += 1;
        // ---- classification ----
        let mut stmts: Vec<polymix_ast::tree::StmtNode> = Vec::new();
        l.body.visit_stmts(&mut |s| stmts.push(s.clone()));
        let depends_unit = |s: &polymix_ast::tree::StmtNode| -> bool {
            // Some subscript row composes to exactly ±1·var (+ params).
            let stmt = &self.prog.scop.statements[s.stmt_idx];
            let d = stmt.dim;
            let p = self.prog.scop.params.len();
            stmt.write.map.iter().any(|row| {
                let mut e = polymix_ast::tree::LinExpr::con(row[d + p]);
                for (k, &c) in row[..d].iter().enumerate() {
                    if c != 0 {
                        e = e.add_scaled(&s.iter_exprs[k], c);
                    }
                }
                e.var_coeffs.len() == 1
                    && e.var_coeffs[0].0 == l.var
                    && e.var_coeffs[0].1.abs() == 1
            })
        };
        let invariant_in_var = |s: &polymix_ast::tree::StmtNode| -> bool {
            let stmt = &self.prog.scop.statements[s.stmt_idx];
            let d = stmt.dim;
            stmt.write.map.iter().all(|row| {
                let mut coeff = 0i64;
                for (k, &c) in row[..d].iter().enumerate() {
                    coeff += c * s.iter_exprs[k].coeff_of(l.var);
                }
                coeff == 0
            })
        };
        let mut owned: Vec<usize> = Vec::new();
        let mut reduced: Vec<usize> = Vec::new();
        let mut ok = true;
        let mut arrays_written: Vec<usize> = Vec::new();
        for s in &stmts {
            let a = self.prog.scop.statements[s.stmt_idx].write.array.0;
            if !arrays_written.contains(&a) {
                arrays_written.push(a);
            }
        }
        for &a in &arrays_written {
            let writers: Vec<&polymix_ast::tree::StmtNode> = stmts
                .iter()
                .filter(|s| self.prog.scop.statements[s.stmt_idx].write.array.0 == a)
                .collect();
            if writers.iter().all(|s| depends_unit(s)) {
                owned.push(a);
            } else if writers.iter().all(|s| {
                self.prog.scop.statements[s.stmt_idx].is_reduction_update()
                    && invariant_in_var(s)
            }) {
                reduced.push(a);
            } else {
                ok = false;
            }
        }
        // Reduced arrays may only be read by their own update statements.
        if ok {
            'outer: for s in &stmts {
                let stmt = &self.prog.scop.statements[s.stmt_idx];
                for (read, is_write) in stmt.accesses() {
                    if is_write {
                        continue;
                    }
                    if reduced.contains(&read.array.0)
                        && !(read.array == stmt.write.array && read.map == stmt.write.map)
                    {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if !ok {
            let mut seq = l.clone();
            seq.par = Par::Seq;
            self.line(&format!(
                "// reduction region {region}: shape not parallelizable, sequential fallback"
            ));
            self.seq_loop(&seq);
            return;
        }
        reduced.sort();
        let arrays = self.all_array_ptrs();
        let v = self.var_name(l.var);
        let lo = self.bound(&l.lo, true);
        let hi = self.bound(&l.hi, false);
        self.line(&format!(
            "// reduction region {region} (reduced {reduced:?}, owner-indexed {owned:?})"
        ));
        self.line("{");
        self.indent += 1;
        self.line(&format!("let r_lo: i64 = {lo};"));
        self.line(&format!("let r_hi: i64 = {hi};"));
        self.line(&format!(
            "let iters: i64 = if r_hi >= r_lo {{ (r_hi - r_lo) / {} + 1 }} else {{ 0 }};",
            l.step
        ));
        self.line("let nthr: usize = THREADS.min(iters.max(1) as usize);");
        self.line("if iters > 0 {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        for a in &reduced {
            let n = self.arr_name(*a);
            let len = self.extent_product(*a);
            self.line(&format!(
                "let mut locals_{n}: Vec<Vec<f64>> = (0..nthr).map(|_| vec![0.0f64; ({len}).max(1) as usize]).collect();"
            ));
        }
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        let local_iters = reduced
            .iter()
            .map(|a| format!("locals_{}.iter_mut()", self.arr_name(*a)))
            .collect::<Vec<_>>();
        if reduced.is_empty() {
            self.line("for t in 0..nthr {");
            self.indent += 1;
            self.line("let tt = t as i64;");
        } else {
            let zip_expr = local_iters
                .clone()
                .into_iter()
                .reduce(|acc, x| format!("{acc}.zip({x})"))
                .unwrap_or_default();
            self.line("let mut t = 0usize;");
            self.line(&format!("for locs in {zip_expr} {{"));
            self.indent += 1;
            self.line("let tt = t as i64; t += 1;");
        }
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(&[], || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        // Rebind reduced pointers to the locals.
        if reduced.len() == 1 {
            let p = self.ptr_name(reduced[0]);
            self.line(&format!("let {p}: *mut f64 = locs.as_mut_ptr();"));
        } else if reduced.len() > 1 {
            let mut pat = "l0_0".to_string();
            for i in 1..reduced.len() {
                pat = format!("({pat}, l0_{i})");
            }
            self.line(&format!("let {pat} = locs;"));
            for (i, a) in reduced.iter().enumerate() {
                let p = self.ptr_name(*a);
                self.line(&format!("let {p}: *mut f64 = l0_{i}.as_mut_ptr();"));
            }
        }
        self.line("let chunk = (iters + nthr as i64 - 1) / nthr as i64;");
        self.line(&format!(
            "let mut {v}: i64 = r_lo + tt * chunk * {};",
            l.step
        ));
        self.line(&format!(
            "let t_hi: i64 = (r_lo + ((tt + 1) * chunk - 1) * {}).min(r_hi);",
            l.step
        ));
        self.line(&format!("while {v} <= t_hi {{"));
        self.indent += 1;
        self.node(&l.body);
        self.line(&format!("{v} += {};", l.step));
        self.indent -= 1;
        self.line("}");
        self.line("true");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        // Combine.
        for a in &reduced {
            let n = self.arr_name(*a);
            let p = self.ptr_name(*a);
            self.line(&format!("for loc in &locals_{n} {{"));
            self.indent += 1;
            self.line(&format!(
                "for (k, &x) in loc.iter().enumerate() {{ *{p}.add(k) += x; }}"
            ));
            self.indent -= 1;
            self.line("}");
        }
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
    }

    /// Point-to-point pipeline over (this loop, next inner loop): the
    /// inner dimension is split into column blocks across threads; each
    /// thread sweeps the outer dimension, awaiting its left neighbor.
    fn pipeline(&mut self, l: &Loop) {
        let inner = match &l.body {
            Node::Loop(inner) => inner,
            Node::Seq(xs)
                if !xs.is_empty()
                    && xs.iter().all(|x| matches!(x, Node::Loop(_))) =>
            {
                self.pipeline_seq(l, xs);
                return;
            }
            _ => {
                // No inner loop structure to pipeline across: sequential.
                let mut seq = l.clone();
                seq.par = Par::Seq;
                self.seq_loop(&seq);
                return;
            }
        };
        let region = self.region;
        self.region += 1;
        let arrays = self.all_array_ptrs();
        let vo = self.var_name(l.var);
        let vi = self.var_name(inner.var);
        let o_lo = self.bound(&l.lo, true);
        let o_hi = self.bound(&l.hi, false);
        // Hull of the inner bounds over the outer range: affine in the
        // outer variable, so extremes sit at the endpoints.
        self.line(&format!("// pipeline region {region}"));
        self.line("{");
        self.indent += 1;
        self.line(&format!("let o_lo: i64 = {o_lo};"));
        self.line(&format!("let o_hi: i64 = {o_hi};"));
        self.line("if o_hi >= o_lo {");
        self.indent += 1;
        // Bind the outer var to both endpoints to evaluate hull bounds.
        // Blocks are assigned in *offset* space (inner value minus the
        // step's own lower bound): offsets are step-invariant up to a
        // monotone leftward drift of at most one grid step per outer
        // step, which the right-neighbor await covers. The span is the
        // maximum extent over the outer range (affine bounds peak at the
        // endpoints).
        self.line(&format!("let span: i64 = {{ let {vo} = o_lo; let a = ({hi1}) - ({lo1}) + 1; let {vo} = o_hi; let b = ({hi1}) - ({lo1}) + 1; a.max(b).max(0) }};",
            lo1 = self.bound(&inner.lo, true),
            hi1 = self.bound(&inner.hi, false)));
        // Block width must exceed the per-step point-ownership jitter of
        // skewed tile grids (bounded by the inner step), so cross-step
        // dependences cross at most one block boundary per step.
        self.line(&format!(
            "let nthr: usize = THREADS.min((span / {}).max(1) as usize);",
            inner.step
        ));
        self.line(&format!(
            "let progress: Vec<Pad> = (0..nthr).map(|_| Pad(AtomicI64::new(o_lo - {}))).collect();",
            l.step
        ));
        self.line("let progress = &progress;");
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        self.line("for t in 0..nthr {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(progress, || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        // Chunk rounded up to the grid step so that sibling grids with
        // small relative shifts quantize into the same thread.
        self.line(&format!(
            "let chunk = (((span + nthr as i64 - 1) / nthr as i64) + {st} - 1) / {st} * {st};",
            st = inner.step
        ));
        let batch = self
            .opts
            .pipeline_batch
            .unwrap_or(8 / l.step.max(1))
            .clamp(1, 8);
        self.line("let off_lo = (t as i64) * chunk;");
        self.line("let off_hi = (t as i64 + 1) * chunk - 1;");
        self.line(&format!("let mut {vo}: i64 = o_lo;"));
        if batch > 1 {
            self.line("let mut step_n: i64 = 0;");
        }
        self.line(&format!("while {vo} <= o_hi {{"));
        self.indent += 1;
        self.line("if POISONED.load(Ordering::Acquire) { return false; }");
        self.line("// await source(outer, block-1): left neighbor finished this step;");
        self.line("// await source(outer-1, block+1): right neighbor finished the previous");
        self.line("// step (covers leftward ownership migration of skewed tile grids).");
        self.line("// Waiters pass their own counter + completed step so a blocked");
        self.line("// worker can flush its batched progress (see await_progress).");
        self.line(&format!(
            "if t > 0 && !await_progress(&progress[t - 1].0, {vo}, &progress[t].0, {vo} - {st}) {{ return false; }}",
            st = l.step
        ));
        self.line(&format!(
            "if t + 1 < nthr && !await_progress(&progress[t + 1].0, {vo} - {st}, &progress[t].0, {vo} - {st}) {{ return false; }}",
            st = l.step
        ));
        // Start on the loop's own stride grid (blocks cut by value; the
        // grid origin may differ per outer step).
        self.line(&format!("let g0: i64 = {};", self.bound(&inner.lo, true)));
        self.line(&format!(
            "let mut {vi}: i64 = g0 + cdiv(off_lo.max(0), {st}) * {st};",
            st = inner.step
        ));
        self.line(&format!(
            "let b_hi: i64 = ({}).min(g0 + off_hi);",
            self.bound(&inner.hi, false)
        ));
        self.line(&format!("while {vi} <= b_hi {{"));
        self.indent += 1;
        self.node(&inner.body);
        self.line(&format!("{vi} += {};", inner.step));
        self.indent -= 1;
        self.line("}");
        // Batched publish: every PIPE_BATCH outer steps plus the final
        // one. The loop step encodes the tile size, so tiled pipelines
        // (large steps, per-step sync already amortized over a tile row)
        // publish every step while untiled ones batch several rows.
        // fetch_max never overwrites a flooded POISON value.
        if batch > 1 {
            self.line("step_n += 1;");
            self.line(&format!(
                "if step_n % {batch} == 0 || {vo} + {st} > o_hi {{ progress[t].0.fetch_max({vo}, Ordering::AcqRel); }} // PIPE_BATCH = {batch}",
                st = l.step
            ));
        } else {
            self.line(&format!(
                "progress[t].0.fetch_max({vo}, Ordering::AcqRel); // PIPE_BATCH = 1"
            ));
        }
        self.line(&format!("{vo} += {};", l.step));
        self.indent -= 1;
        self.line("}");
        self.line("true");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
    }

    /// Diagonal-by-value wavefront over this loop and its immediate inner
    /// loop: collect every (u, v) pair at runtime, group by `u + v`, run
    /// each diagonal's cells across threads with an implicit barrier
    /// between diagonals (scope join) — the Fig. 6 "wavefront doall".
    fn wavefront(&mut self, l: &Loop) {
        let Node::Loop(inner) = &l.body else {
            let mut seq = l.clone();
            seq.par = Par::Seq;
            self.seq_loop(&seq);
            return;
        };
        let region = self.region;
        self.region += 1;
        let arrays = self.all_array_ptrs();
        let vo = self.var_name(l.var);
        let vi = self.var_name(inner.var);
        self.line(&format!("// wavefront region {region}"));
        self.line("{");
        self.indent += 1;
        // Enumerate tile origins.
        self.line("let mut pairs: Vec<(i64, i64)> = Vec::new();");
        self.line(&format!("let mut {vo}: i64 = {};", self.bound(&l.lo, true)));
        self.line(&format!("let {vo}_hi: i64 = {};", self.bound(&l.hi, false)));
        self.line(&format!("while {vo} <= {vo}_hi {{"));
        self.indent += 1;
        self.line(&format!("let mut {vi}: i64 = {};", self.bound(&inner.lo, true)));
        self.line(&format!("let {vi}_hi: i64 = {};", self.bound(&inner.hi, false)));
        self.line(&format!("while {vi} <= {vi}_hi {{"));
        self.indent += 1;
        self.line(&format!("pairs.push(({vo}, {vi}));"));
        self.line(&format!("{vi} += {};", inner.step));
        self.indent -= 1;
        self.line("}");
        self.line(&format!("{vo} += {};", l.step));
        self.indent -= 1;
        self.line("}");
        // Diagonal weight: skewed tile grids shift their inner origin by
        // up to (inner step − 1) per outer step, so the plain u+v diagonal
        // can order dependent tiles backwards. Weighting u by
        // (inner_step / outer_step + 2) restores strict forward progress.
        let weight = inner.step / l.step.max(1) + 2;
        self.line(&format!(
            "pairs.sort_by_key(|&(u, v)| ({weight} * u + v, u));"
        ));
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        self.line("let mut d0 = 0usize;");
        self.line("while d0 < pairs.len() {");
        self.indent += 1;
        self.line(&format!("let w = {weight} * pairs[d0].0 + pairs[d0].1;"));
        self.line("let mut d1 = d0;");
        self.line(&format!(
            "while d1 < pairs.len() && {weight} * pairs[d1].0 + pairs[d1].1 == w {{ d1 += 1; }}"
        ));
        self.line("let diag = &pairs[d0..d1];");
        self.line("let nthr = THREADS.min(diag.len().max(1));");
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        self.line("for t in 0..nthr {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(&[], || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        self.line("let chunk = (diag.len() + nthr - 1) / nthr;");
        // Both ends clamped: ceil-div chunks overshoot the tail (e.g. 5
        // tiles over 4 threads gives chunk 2, so t=3 starts at 6) and a
        // bare `diag[lo..]` would panic the worker.
        self.line("let lo = (t * chunk).min(diag.len());");
        self.line("let hi = ((t + 1) * chunk).min(diag.len());");
        self.line("for &(u, v) in &diag[lo..hi] {");
        self.indent += 1;
        self.line(&format!("let {vo}: i64 = u;"));
        self.line(&format!("let {vi}: i64 = v;"));
        self.node(&inner.body.clone());
        self.indent -= 1;
        self.line("}");
        self.line("true");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        // The barrier must not release into diagonal w+1 after a
        // poisoned diagonal w.
        self.line("if POISONED.load(Ordering::Acquire) { break; }");
        self.line("d0 = d1;");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
    }

    /// Counter-graph lowering of the same wavefront: one tile per
    /// (u, v) pair, one dependence counter per tile initialized to the
    /// size of the previous weighted diagonal, one thread scope for the
    /// whole region. Workers claim tiles from a shared cursor in
    /// topological (diagonal-sorted) order, await the tile's counter,
    /// run it, then decrement every counter of the next diagonal.
    /// Claiming in topological order makes the waits deadlock-free: the
    /// lowest claimed unfinished tile always has every predecessor
    /// finished. On panic, `contained(pending, ..)` floods the counters
    /// with POISON so every waiter unblocks and returns.
    fn taskgraph(&mut self, l: &Loop) {
        let Node::Loop(inner) = &l.body else {
            let mut seq = l.clone();
            seq.par = Par::Seq;
            self.seq_loop(&seq);
            return;
        };
        let region = self.region;
        self.region += 1;
        let arrays = self.all_array_ptrs();
        let vo = self.var_name(l.var);
        let vi = self.var_name(inner.var);
        self.line(&format!(
            "// taskgraph region {region} (counter graph over weighted diagonals)"
        ));
        self.line("{");
        self.indent += 1;
        // Enumerate tile origins — identical to the wavefront lowering.
        self.line("let mut pairs: Vec<(i64, i64)> = Vec::new();");
        self.line(&format!("let mut {vo}: i64 = {};", self.bound(&l.lo, true)));
        self.line(&format!("let {vo}_hi: i64 = {};", self.bound(&l.hi, false)));
        self.line(&format!("while {vo} <= {vo}_hi {{"));
        self.indent += 1;
        self.line(&format!("let mut {vi}: i64 = {};", self.bound(&inner.lo, true)));
        self.line(&format!("let {vi}_hi: i64 = {};", self.bound(&inner.hi, false)));
        self.line(&format!("while {vi} <= {vi}_hi {{"));
        self.indent += 1;
        self.line(&format!("pairs.push(({vo}, {vi}));"));
        self.line(&format!("{vi} += {};", inner.step));
        self.indent -= 1;
        self.line("}");
        self.line(&format!("{vo} += {};", l.step));
        self.indent -= 1;
        self.line("}");
        // Same skew-safe diagonal weight as the wavefront lowering: the
        // sort order is the topological order the cursor claims in.
        let weight = inner.step / l.step.max(1) + 2;
        self.line(&format!(
            "pairs.sort_by_key(|&(u, v)| ({weight} * u + v, u));"
        ));
        self.line("let n_tiles = pairs.len();");
        // Diagonal boundaries: diag d spans diag_start[d]..diag_start[d+1].
        self.line("let mut diag_start: Vec<usize> = vec![0];");
        self.line("let mut b = 0usize;");
        self.line("while b < n_tiles {");
        self.indent += 1;
        self.line(&format!("let w = {weight} * pairs[b].0 + pairs[b].1;"));
        self.line(&format!(
            "while b < n_tiles && {weight} * pairs[b].0 + pairs[b].1 == w {{ b += 1; }}"
        ));
        self.line("diag_start.push(b);");
        self.indent -= 1;
        self.line("}");
        self.line("let mut diag_of: Vec<u32> = vec![0; n_tiles];");
        self.line("for d in 0..diag_start.len() - 1 {");
        self.indent += 1;
        self.line("for k in diag_start[d]..diag_start[d + 1] { diag_of[k] = d as u32; }");
        self.indent -= 1;
        self.line("}");
        // Dependence counters: a tile in diagonal d waits for every tile
        // of diagonal d-1 (the full-cone graph, which covers any forward
        // inter-tile dependence the wavefront annotation admits).
        self.line("let pending: Vec<Pad> = (0..n_tiles).map(|_| Pad(AtomicI64::new(0))).collect();");
        self.line("for d in 1..diag_start.len() - 1 {");
        self.indent += 1;
        self.line("let preds = (diag_start[d] - diag_start[d - 1]) as i64;");
        self.line("for k in diag_start[d]..diag_start[d + 1] {");
        self.indent += 1;
        self.line("pending[k].0.store(preds, Ordering::Relaxed);");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.line("let pending = &pending;");
        self.line("let pairs = &pairs;");
        self.line("let diag_start = &diag_start;");
        self.line("let diag_of = &diag_of;");
        self.line("let cursor = Pad(AtomicI64::new(0));");
        self.line("let cursor = &cursor;");
        self.line("let nthr = THREADS.min(n_tiles.max(1));");
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        self.line("for _t in 0..nthr {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(pending, || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        self.line("loop {");
        self.indent += 1;
        self.line("let k = cursor.0.fetch_add(1, Ordering::Relaxed) as usize;");
        self.line("if k >= n_tiles { return true; }");
        self.line("if POISONED.load(Ordering::Acquire) { return false; }");
        self.line("if !await_zero(&pending[k].0) { return false; }");
        self.line(&format!("let {vo}: i64 = pairs[k].0;"));
        self.line(&format!("let {vi}: i64 = pairs[k].1;"));
        self.node(&inner.body.clone());
        self.line("let dk = diag_of[k] as usize;");
        self.line("if dk + 2 < diag_start.len() {");
        self.indent += 1;
        self.line("for s in diag_start[dk + 1]..diag_start[dk + 2] {");
        self.indent += 1;
        self.line("pending[s].0.fetch_sub(1, Ordering::AcqRel);");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        self.indent -= 1;
        self.line("}");
    }

    /// Pipeline over an outer loop whose body is a sequence of sibling
    /// sub-loops (the fused-stencil shape): column blocks are carved out
    /// of the hull of every sibling's range; each thread sweeps the outer
    /// variable, awaits its left neighbor, runs every sibling clamped to
    /// its block, then publishes progress.
    fn pipeline_seq(&mut self, l: &Loop, siblings: &[Node]) {
        let region = self.region;
        self.region += 1;
        let arrays = self.all_array_ptrs();
        let vo = self.var_name(l.var);
        let o_lo = self.bound(&l.lo, true);
        let o_hi = self.bound(&l.hi, false);
        // The caller only passes all-loop sibling lists; anything else is
        // silently skipped (it cannot be pipelined anyway).
        let subs: Vec<&Loop> = siblings
            .iter()
            .filter_map(|x| match x {
                Node::Loop(il) => Some(il.as_ref()),
                _ => None,
            })
            .collect();
        self.line(&format!("// pipeline region {region} (fused siblings)"));
        self.line("{");
        self.indent += 1;
        self.line(&format!("let o_lo: i64 = {o_lo};"));
        self.line(&format!("let o_hi: i64 = {o_hi};"));
        self.line("if o_hi >= o_lo {");
        self.indent += 1;
        // Hull over all siblings and both outer endpoints.
        let mut span_parts = Vec::new();
        for il in &subs {
            span_parts.push(format!(
                "{{ let {vo} = o_lo; let a = ({hi}) - ({lo}) + 1; let {vo} = o_hi; let b = ({hi}) - ({lo}) + 1; a.max(b) }}",
                lo = self.bound(&il.lo, true),
                hi = self.bound(&il.hi, false)
            ));
        }
        self.line(&format!(
            "let span: i64 = [{}].iter().copied().max().unwrap().max(0);",
            span_parts.join(", ")
        ));
        // Block width must exceed the per-step point-ownership jitter of
        // skewed tile grids (bounded by the largest sibling step).
        let max_step = subs.iter().map(|il| il.step).max().unwrap_or(1);
        self.line(&format!(
            "let nthr: usize = THREADS.min((span / {max_step}).max(1) as usize);"
        ));
        // Progress counts completed (outer step, sibling) *phases* so the
        // right-neighbor lookahead is one sibling phase, covering the
        // one-tile leftward shifts between sibling grids.
        self.line(&format!(
            "let nsib: i64 = {};",
            subs.len()
        ));
        self.line("let progress: Vec<Pad> = (0..nthr).map(|_| Pad(AtomicI64::new(-1))).collect();");
        self.line("let progress = &progress;");
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = P({p});"));
        }
        self.line("std::thread::scope(|sc| {");
        self.indent += 1;
        self.line("for t in 0..nthr {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let s_{p} = s_{p};"));
        }
        self.line("sc.spawn(move || contained(progress, || unsafe {");
        self.indent += 1;
        for a in &arrays {
            let p = self.ptr_name(*a);
            self.line(&format!("let {p}: *mut f64 = s_{p}.get();"));
        }
        // Chunk rounded up to the grid step so that sibling grids with
        // small relative shifts quantize into the same thread.
        self.line(&format!(
            "let chunk = (((span + nthr as i64 - 1) / nthr as i64) + {st} - 1) / {st} * {st};",
            st = max_step
        ));
        self.line("let off_lo = (t as i64) * chunk;");
        self.line("let off_hi = (t as i64 + 1) * chunk - 1;");
        // Publish batching: suppress all-but-every-`batch`-th outer
        // step's publishes. Safe for the same reason as the non-fused
        // pipeline — `await_progress` flushes the waiter's own counter
        // on block, so a batched thread can never wedge its neighbors.
        // The final outer step always publishes (the `> o_hi` arm), so
        // trailing phases are never withheld.
        let batch = self.opts.pipeline_batch.unwrap_or(1).clamp(1, 8);
        self.line(&format!("let mut {vo}: i64 = o_lo;"));
        self.line("let mut step_idx: i64 = 0;");
        self.line(&format!("while {vo} <= o_hi {{"));
        self.indent += 1;
        self.line("if POISONED.load(Ordering::Acquire) { return false; }");
        // Common grid origin: siblings' grids are shifted copies of each
        // other; quantizing all of them against the minimum lower bound
        // keeps block assignment consistent across siblings.
        let g0_parts: Vec<String> = subs
            .iter()
            .map(|il| format!("({})", self.bound(&il.lo, true)))
            .collect();
        self.line(&format!(
            "let g0c: i64 = [{}].iter().copied().min().unwrap();",
            g0_parts.join(", ")
        ));
        for (sib, il) in subs.iter().enumerate() {
            self.line(&format!("let ph: i64 = step_idx * nsib + {sib};"));
            self.line("if t > 0 && !await_progress(&progress[t - 1].0, ph, &progress[t].0, ph - 1) { return false; }");
            self.line("if t + 1 < nthr && !await_progress(&progress[t + 1].0, ph - 1, &progress[t].0, ph - 1) { return false; }");
            let vi = self.var_name(il.var);
            self.line("{");
            self.indent += 1;
            self.line(&format!("let g0: i64 = {};", self.bound(&il.lo, true)));
            self.line(&format!(
                "let mut {vi}: i64 = g0 + cdiv((g0c + off_lo - g0).max(0), {st}) * {st};",
                st = il.step
            ));
            self.line(&format!(
                "let b_hi: i64 = ({}).min(g0c + off_hi);",
                self.bound(&il.hi, false)
            ));
            self.line(&format!("while {vi} <= b_hi {{"));
            self.indent += 1;
            self.node(&il.body.clone());
            self.line(&format!("{vi} += {};", il.step));
            self.indent -= 1;
            self.line("}");
            self.indent -= 1;
            self.line("}");
            if batch > 1 {
                self.line(&format!(
                    "if (step_idx + 1) % {batch} == 0 || {vo} + {st} > o_hi {{ progress[t].0.fetch_max(ph, Ordering::AcqRel); }} // PIPE_BATCH = {batch}",
                    st = l.step
                ));
            } else {
                self.line(&format!(
                    "progress[t].0.fetch_max(ph, Ordering::AcqRel); // PIPE_BATCH = {batch}"
                ));
            }
        }
        self.line("step_idx += 1;");
        self.line(&format!("{vo} += {};", l.step));
        self.indent -= 1;
        self.line("}");
        self.line("true");
        self.indent -= 1;
        self.line("}));");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("});");
        self.indent -= 1;
        self.line("}");
        self.indent -= 1;
        self.line("}");
    }

    fn all_array_ptrs(&self) -> Vec<usize> {
        (0..self.prog.scop.arrays.len()).collect()
    }

    fn stmt(&mut self, s: &polymix_ast::tree::StmtNode) {
        let stmt = &self.prog.scop.statements[s.stmt_idx];
        self.line("{");
        self.indent += 1;
        for (k, e) in s.iter_exprs.iter().enumerate() {
            let code = self.lin(e);
            self.line(&format!("let x{k}: i64 = {code};"));
        }
        let rhs = self.expr(&stmt.body, stmt.dim);
        let idx = self.subscript(stmt.write.array.0, &stmt.write.map, stmt.dim);
        let p = self.ptr_name(stmt.write.array.0);
        self.line(&format!("*{p}.add(({idx}) as usize) = {rhs};"));
        self.indent -= 1;
        self.line("}");
    }

    /// Renders a statement-body expression; iterators appear as `x{k}`.
    fn expr(&self, e: &Expr, d: usize) -> String {
        match e {
            Expr::Const(c) => {
                let s = format!("{c:?}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    format!("{s}f64")
                } else {
                    format!("{s}.0f64")
                }
            }
            Expr::Iter(k) => format!("(x{k} as f64)"),
            Expr::Param(k) => format!("({} as f64)", self.param_const(*k)),
            Expr::Bin(op, a, b) => format!(
                "({} {} {})",
                self.expr(a, d),
                op.symbol(),
                self.expr(b, d)
            ),
            Expr::Un(UnOp::Neg, a) => format!("(-{})", self.expr(a, d)),
            Expr::Un(UnOp::Sqrt, a) => format!("({}).sqrt()", self.expr(a, d)),
            Expr::Un(UnOp::Exp, a) => format!("({}).exp()", self.expr(a, d)),
            Expr::Read { array, subs } => {
                let idx = self.subscript(array.0, subs, d);
                let p = self.ptr_name(array.0);
                format!("*{p}.add(({idx}) as usize)")
            }
        }
    }

    /// Renders the row-major linearized index of an access.
    fn subscript(&self, array: usize, rows: &[Vec<i64>], d: usize) -> String {
        let arr = &self.prog.scop.arrays[array];
        if rows.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (dim, row) in rows.iter().enumerate() {
            let sub = self.subscript_row(row, d);
            if dim == 0 {
                out = sub;
            } else {
                let ext = self.extent_expr(&arr.dims[dim]);
                out = format!("({out}) * {ext} + {sub}");
            }
        }
        out
    }

    fn subscript_row(&self, row: &[i64], d: usize) -> String {
        let p = self.prog.scop.params.len();
        let mut parts: Vec<String> = Vec::new();
        for (k, &c) in row[..d].iter().enumerate() {
            if c != 0 {
                parts.push(coef_term(c, &format!("x{k}"), parts.is_empty()));
            }
        }
        for (k, &c) in row[d..d + p].iter().enumerate() {
            if c != 0 {
                parts.push(coef_term(c, &self.param_const(k), parts.is_empty()));
            }
        }
        let cst = row[d + p];
        if cst != 0 || parts.is_empty() {
            if parts.is_empty() {
                parts.push(format!("{cst}"));
            } else if cst > 0 {
                parts.push(format!(" + {cst}"));
            } else {
                parts.push(format!(" - {}", -cst));
            }
        }
        format!("({})", parts.concat())
    }
}

fn coef_term(c: i64, name: &str, first: bool) -> String {
    match (c, first) {
        (1, true) => name.to_string(),
        (-1, true) => format!("-{name}"),
        (c, true) => format!("{c} * {name}"),
        (1, false) => format!(" + {name}"),
        (-1, false) => format!(" - {name}"),
        (c, false) if c > 0 => format!(" + {c} * {name}"),
        (c, false) => format!(" - {} * {name}", -c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_poly::original_program;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::{BinOp, Expr as IExpr};

    fn simple_prog() -> Program {
        let mut b = ScopBuilder::new("axpy", &["N"], &[16]);
        let x = b.array("X", &["N"]);
        let y = b.array("Y", &["N"]);
        b.enter("i", con(0), par("N"));
        let rhs = IExpr::mul(IExpr::Const(2.5), b.rd(x, &[ix("i")]));
        b.stmt_update("S", y, &[ix("i")], BinOp::Add, rhs);
        b.exit();
        original_program(&b.finish().expect("well-formed SCoP")).expect("original program")
    }

    #[test]
    fn emits_compilable_looking_source() {
        let prog = simple_prog();
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(src.contains("fn main()"), "{src}");
        assert!(src.contains("const P_N: i64 = 16;"));
        assert!(src.contains("checksum"));
        assert!(src.contains("gflops"));
        // Sequential loop structure.
        assert!(src.contains("while v_c1 <="), "{src}");
    }

    #[test]
    fn doall_annotation_produces_thread_scope() {
        let mut prog = simple_prog();
        prog.body.visit_loops_mut(&mut |l| l.par = Par::Doall);
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("std::thread::scope"), "{src}");
        assert!(src.contains("doall region 0"));
    }

    #[test]
    fn reduction_annotation_classifies_owner_indexed_writes() {
        // y[i] += … under a parallel i is owner-indexed: threads write the
        // global array directly, no private copies.
        let mut prog = simple_prog();
        prog.body.visit_loops_mut(&mut |l| l.par = Par::Reduction);
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(!src.contains("locals_a_y"), "{src}");
        assert!(src.contains("owner-indexed [1]"), "{src}");
    }

    #[test]
    fn reduction_annotation_produces_locals_for_true_reductions() {
        // acc[0] += x[i]: the write address is invariant in the parallel
        // variable, so thread-private accumulators are required.
        use polymix_ir::builder::{con, ix, par, ScopBuilder};
        use polymix_ir::BinOp;
        let mut b = ScopBuilder::new("sum", &["N"], &[16]);
        let x = b.array("X", &["N"]);
        let acc = b.array("ACC", &[]);
        b.enter("i", con(0), par("N"));
        let rhs = b.rd(x, &[ix("i")]);
        b.stmt_update("S", acc, &[], BinOp::Add, rhs);
        b.exit();
        let mut prog = crate::from_poly::original_program(&b.finish().expect("well-formed SCoP")).expect("original program");
        prog.body.visit_loops_mut(&mut |l| l.par = Par::Reduction);
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 16,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("locals_a_acc"), "{src}");
        assert!(src.contains("+= x"), "{src}");
    }

    #[test]
    fn parallel_kernels_adopt_the_poisonable_protocol() {
        let mut prog = simple_prog();
        prog.body.visit_loops_mut(&mut |l| l.par = Par::Doall);
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        // Workers run inside the contained() unwind boundary, and a
        // poisoned run exits 101 before printing a checksum.
        assert!(src.contains("sc.spawn(move || contained(&[], || unsafe {"), "{src}");
        assert!(src.contains("static POISONED: AtomicBool"), "{src}");
        assert!(src.contains("std::process::exit(101)"), "{src}");
        let poisoned_gate = src.find("if POISONED.load(Ordering::Acquire) {").expect("gate");
        let checksum = src.find("checksum").expect("checksum");
        assert!(poisoned_gate < checksum, "exit gate must precede checksum printing");
    }

    #[test]
    fn pipeline_awaits_are_poison_aware() {
        // A 2-deep nest with a carried stencil dependence: annotate the
        // outer loop as Pipeline and check the emitted protocol.
        use polymix_ir::builder::{con, ix, par, ScopBuilder};
        let mut b = ScopBuilder::new("stencil", &["N"], &[16]);
        let a = b.array("A", &["N", "N"]);
        b.enter("t", con(1), par("N"));
        b.enter("i", con(1), par("N"));
        let rhs = b.rd(a, &[ix("t"), ix("i")]);
        b.stmt("S", a, &[ix("t"), ix("i")], rhs);
        b.exit();
        b.exit();
        let mut prog = crate::from_poly::original_program(&b.finish().expect("well-formed SCoP"))
            .expect("original program");
        let mut outer = true;
        prog.body.visit_loops_mut(&mut |l| {
            l.par = if outer { Par::Pipeline } else { Par::Seq };
            outer = false;
        });
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("sc.spawn(move || contained(progress, || unsafe {"), "{src}");
        assert!(src.contains("!await_progress(&progress[t - 1]"), "{src}");
        assert!(src.contains("{ return false; }"), "{src}");
        assert!(src.contains("fetch_max"), "{src}");
        assert!(!src.contains("progress[t].store("), "stores must be fetch_max: {src}");
    }

    #[test]
    fn custom_init_is_inlined() {
        let prog = simple_prog();
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 0,
                threads: 1,
                init_rust: Some("for k in 0..a_x.len() { a_x[k] = 1.0; }".into()),
                reps: 3,
                ..Default::default()
            },
        );
        assert!(src.contains("a_x[k] = 1.0"), "{src}");
        assert!(src.contains("for _rep in 0..3"), "{src}");
    }

    fn pipeline_prog() -> Program {
        use polymix_ir::builder::{con, ix, par, ScopBuilder};
        let mut b = ScopBuilder::new("stencil", &["N"], &[16]);
        let a = b.array("A", &["N", "N"]);
        b.enter("t", con(1), par("N"));
        b.enter("i", con(1), par("N"));
        let rhs = b.rd(a, &[ix("t"), ix("i")]);
        b.stmt("S", a, &[ix("t"), ix("i")], rhs);
        b.exit();
        b.exit();
        let mut prog = crate::from_poly::original_program(&b.finish().expect("well-formed SCoP"))
            .expect("original program");
        let mut outer = true;
        prog.body.visit_loops_mut(&mut |l| {
            l.par = if outer { Par::Pipeline } else { Par::Seq };
            outer = false;
        });
        prog
    }

    #[test]
    fn emitted_synchronization_is_cache_line_padded() {
        let src = emit_rust(
            &pipeline_prog(),
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("#[repr(align(64))]"), "{src}");
        assert!(src.contains("struct Pad(AtomicI64);"), "{src}");
        assert!(src.contains("let progress: Vec<Pad>"), "{src}");
        // Both neighbor awaits and publishes go through the padded cell.
        assert!(src.contains("&progress[t - 1].0"), "{src}");
        assert!(src.contains("progress[t].0.fetch_max("), "{src}");
    }

    #[test]
    fn pipeline_publishes_in_batches() {
        let prog = pipeline_prog();
        // Unit-step loop, no override: auto batch is 8, amortized by a
        // local counter that only hits the shared cell every 8 rows.
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("// PIPE_BATCH = 8"), "{src}");
        assert!(src.contains("step_n += 1;"), "{src}");
        assert!(src.contains("if step_n % 8 == 0 ||"), "{src}");
        // Explicit batch of 1 degenerates to the per-row publish with no
        // dead counter left behind.
        let src1 = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                pipeline_batch: Some(1),
                ..Default::default()
            },
        );
        assert!(src1.contains("// PIPE_BATCH = 1"), "{src1}");
        assert!(!src1.contains("step_n"), "{src1}");
    }

    fn fused_pipeline_prog() -> Program {
        use polymix_ir::builder::{con, ix, par, ScopBuilder};
        let mut b = ScopBuilder::new("fused", &["N"], &[16]);
        let a = b.array("A", &["N", "N"]);
        let c = b.array("C", &["N", "N"]);
        b.enter("t", con(1), par("N"));
        b.enter("i", con(1), par("N"));
        let rhs = b.rd(a, &[ix("t"), ix("i")]);
        b.stmt("S1", a, &[ix("t"), ix("i")], rhs);
        b.exit();
        b.enter("j", con(1), par("N"));
        let rhs2 = b.rd(c, &[ix("t"), ix("j")]);
        b.stmt("S2", c, &[ix("t"), ix("j")], rhs2);
        b.exit();
        b.exit();
        let mut prog = crate::from_poly::original_program(&b.finish().expect("well-formed SCoP"))
            .expect("original program");
        let mut outer = true;
        prog.body.visit_loops_mut(&mut |l| {
            l.par = if outer { Par::Pipeline } else { Par::Seq };
            outer = false;
        });
        prog
    }

    #[test]
    fn fused_sibling_pipeline_honors_batch_knob() {
        // Regression: pipeline_seq used to publish every sibling phase
        // unconditionally, silently dropping a tuned pipeline_batch.
        let prog = fused_pipeline_prog();
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("(fused siblings)"), "{src}");
        // Default stays the per-phase publish protocol.
        assert!(src.contains("// PIPE_BATCH = 1"), "{src}");
        assert!(!src.contains("if (step_idx + 1) %"), "{src}");
        let src4 = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                pipeline_batch: Some(4),
                ..Default::default()
            },
        );
        // Batched: publishes gated on every 4th outer step, with the
        // final-step arm so trailing phases are never withheld.
        assert!(src4.contains("// PIPE_BATCH = 4"), "{src4}");
        assert!(
            src4.contains("if (step_idx + 1) % 4 == 0 || v_c1 + 1 > o_hi {"),
            "{src4}"
        );
        assert!(!src4.contains("fetch_max(ph, Ordering::AcqRel); // PIPE_BATCH = 1"), "{src4}");
    }

    #[test]
    fn blocked_awaits_flush_own_progress() {
        // The emitted await helper must publish the waiter's own
        // completed progress when its spin budget runs out; otherwise
        // batched publishes can deadlock two mutually waiting neighbors.
        let src = emit_rust(
            &pipeline_prog(),
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(
            src.contains("own.fetch_max(own_done, Ordering::AcqRel);"),
            "{src}"
        );
        assert!(src.contains("let mut flushed = false;"), "{src}");
    }

    fn wavefront_prog() -> Program {
        let mut prog = pipeline_prog();
        prog.body.visit_loops_mut(&mut |l| {
            if l.par == Par::Pipeline {
                l.par = Par::Wavefront;
            }
        });
        prog
    }

    #[test]
    fn taskgraph_knob_lowers_wavefront_to_counter_graph() {
        let prog = wavefront_prog();
        // Knob off (default): the diagonal-barrier lowering, untouched.
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("// wavefront region"), "{src}");
        assert!(!src.contains("// taskgraph region"), "{src}");
        // Knob on: the counter-graph protocol replaces it.
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                taskgraph: true,
                ..Default::default()
            },
        );
        assert!(src.contains("// taskgraph region"), "{src}");
        assert!(!src.contains("// wavefront region"), "{src}");
        // Tiles are claimed from the topological cursor, awaited through
        // per-tile dependence counters inside the poison boundary, and
        // published by decrementing the next diagonal's counters.
        assert!(
            src.contains("let k = cursor.0.fetch_add(1, Ordering::Relaxed) as usize;"),
            "{src}"
        );
        assert!(
            src.contains("if !await_zero(&pending[k].0) { return false; }"),
            "{src}"
        );
        assert!(
            src.contains("pending[s].0.fetch_sub(1, Ordering::AcqRel);"),
            "{src}"
        );
        assert!(
            src.contains("sc.spawn(move || contained(pending, || unsafe {"),
            "{src}"
        );
        // One thread scope for the whole region — no per-diagonal joins.
        assert_eq!(src.matches("std::thread::scope(|sc| {").count(), 1, "{src}");
    }

    #[test]
    fn taskgraph_region_gates_poison_before_counter_awaits() {
        let src = emit_rust(
            &wavefront_prog(),
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                taskgraph: true,
                ..Default::default()
            },
        );
        // Within the region, a worker must observe the POISONED flag
        // before settling into a counter wait, and an abandoned await
        // must abandon the worker.
        let region = src.find("// taskgraph region").expect("region marker");
        let gate = src[region..]
            .find("if POISONED.load(Ordering::Acquire) { return false; }")
            .expect("poison gate in region");
        let wait = src[region..]
            .find("await_zero(&pending[")
            .expect("counter await in region");
        assert!(gate < wait, "poison gate must precede the counter await");
        // The emitted helper distinguishes POISON from a genuine count.
        assert!(src.contains("fn await_zero(cell: &AtomicI64) -> bool {"), "{src}");
        assert!(src.contains("if v == POISON { return false; }"), "{src}");
    }

    #[test]
    fn vect_post_pass_emits_group_lanes_and_remainder() {
        let prog = simple_prog();
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 1,
                vect: Some(vec![0]),
                ..Default::default()
            },
        );
        assert!(
            src.contains("// vect region 0 (width 4, doall-certified)"),
            "{src}"
        );
        assert!(src.contains("while v_c1 + 3 <= v_c1_hi {"), "{src}");
        assert!(src.contains("let v_c1 = v_c1 + 3;"), "{src}");
        assert!(src.contains("v_c1 += 4;"), "{src}");
        assert!(src.contains("// vect remainder"), "{src}");
        assert!(src.contains("// vect end 0"), "{src}");
        // Exactly VECT_WIDTH lane blocks shadow the loop variable.
        assert_eq!(src.matches("let v_c1 = v_c1").count(), 4, "{src}");
        // An unlisted variable keeps the plain sequential emission.
        let plain = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 1,
                ..Default::default()
            },
        );
        assert!(!plain.contains("// vect"), "{plain}");
    }

    #[test]
    fn vect_never_swallows_a_parallel_region() {
        // A multi-thread doall loop listed for vect keeps its thread
        // scope: the post-pass targets the sequential innermost loops
        // inside parallel regions, never the regions themselves.
        let mut prog = simple_prog();
        prog.body.visit_loops_mut(&mut |l| l.par = Par::Doall);
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                vect: Some(vec![0]),
                ..Default::default()
            },
        );
        assert!(src.contains("// doall region 0"), "{src}");
        assert!(!src.contains("// vect region"), "{src}");
    }

    #[test]
    fn triangular_doall_claims_dynamic_chunks() {
        use polymix_ir::builder::{con, ix, par, ScopBuilder};
        let mut b = ScopBuilder::new("tri", &["N"], &[16]);
        let a = b.array("A", &["N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), ix("i"));
        let rhs = b.rd(a, &[ix("j")]);
        b.stmt_update("S", a, &[ix("i")], BinOp::Add, rhs);
        b.exit();
        b.exit();
        let mut prog = crate::from_poly::original_program(&b.finish().expect("well-formed SCoP"))
            .expect("original program");
        let mut outer = true;
        prog.body.visit_loops_mut(&mut |l| {
            l.par = if outer { Par::Doall } else { Par::Seq };
            outer = false;
        });
        let src = emit_rust(
            &prog,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(src.contains("(dynamic schedule)"), "{src}");
        assert!(src.contains("cursor.0.fetch_add(grain, Ordering::Relaxed)"), "{src}");
        // Rectangular nests keep the zero-overhead static split.
        let mut rect = simple_prog();
        rect.body.visit_loops_mut(&mut |l| l.par = Par::Doall);
        let rect_src = emit_rust(
            &rect,
            &EmitOptions {
                params: vec![16],
                flops: 32,
                threads: 4,
                ..Default::default()
            },
        );
        assert!(rect_src.contains("(static schedule)"), "{rect_src}");
        assert!(!rect_src.contains("cursor"), "{rect_src}");
    }
}
