//! Shared AST-stage helpers used by both optimizers (the Pluto-like
//! baseline and the paper's poly+AST flow): per-nest dependence-vector
//! extraction, skewing for tilability (Sec. IV-B), and parallelism
//! marking (Sec. IV-A).

use polymix_ast::parallel::{outermost_parallel, LoopParallelism};
use polymix_ast::transforms;
use polymix_ast::tree::{Node, Par, Program};
use polymix_deps::{dep_vector, DepElem, Podg};
use polymix_ir::{Schedule, Scop};

/// Dependence summary of one top-level loop nest of a generated program.
#[derive(Clone, Debug)]
pub struct NestInfo {
    /// Statement indices (into `scop.statements`) inside the nest.
    pub stmts: Vec<usize>,
    /// Maximum loop depth of the nest.
    pub depth: usize,
    /// Dependence vectors (`(vector, is_reduction)`) of edges internal to
    /// the nest, in the **transformed** loop coordinates.
    pub vectors: Vec<(Vec<DepElem>, bool)>,
    /// `(src statement, dst statement)` of each vector, aligned with
    /// [`NestInfo::vectors`].
    pub endpoints: Vec<(usize, usize)>,
}

/// Splits the program's top level into nests and computes each nest's
/// dependence vectors under the given final schedules.
pub fn nest_infos(scop: &Scop, schedules: &[Schedule], podg: &Podg, prog: &Program) -> Vec<NestInfo> {
    let top: Vec<&Node> = match &prog.body {
        Node::Seq(xs) => xs.iter().collect(),
        other => vec![other],
    };
    top.iter().map(|n| nest_info_of(scop, schedules, podg, n)).collect()
}

fn nest_info_of(scop: &Scop, schedules: &[Schedule], podg: &Podg, node: &Node) -> NestInfo {
    let mut stmts = Vec::new();
    node.visit_stmts(&mut |s| {
        if !stmts.contains(&s.stmt_idx) {
            stmts.push(s.stmt_idx);
        }
    });
    let depth = node_depth(node);
    let mut vectors = Vec::new();
    let mut endpoints = Vec::new();
    for d in &podg.deps {
        if stmts.contains(&d.src.0) && stmts.contains(&d.dst.0) {
            let v = dep_vector(
                d,
                &schedules[d.src.0],
                &schedules[d.dst.0],
                depth,
                &scop.default_params,
            );
            vectors.push((v, d.is_reduction));
            endpoints.push((d.src.0, d.dst.0));
        }
    }
    NestInfo {
        stmts,
        depth,
        vectors,
        endpoints,
    }
}

/// Maximum loop depth below `node` (counting nested loops on any path).
pub fn node_depth(node: &Node) -> usize {
    match node {
        Node::Seq(xs) => xs.iter().map(node_depth).max().unwrap_or(0),
        Node::Guard(_, b) => node_depth(b),
        Node::Loop(l) => 1 + node_depth(&l.body),
        Node::Stmt(_) => 0,
    }
}

/// Applies loop skewing so every dependence-vector element of the nest
/// becomes non-negative where possible (the preprocessing loop tiling
/// requires, Sec. IV-B). The search walks levels outermost-in; for a
/// level with negative elements it tries skew factors `f ∈ 1..=4` against
/// each outer pivot level, *recomputing the vectors exactly* from the
/// dependence polyhedra after each tentative skew (abstract updates lose
/// too much precision for direction-vector pivots). Returns the updated
/// vectors, or `None` when some negative element cannot be repaired.
///
/// The tree rewrite skews *every* loop at level `k` of the nest by the
/// variable of its enclosing level-`j` loop.
#[allow(clippy::too_many_arguments)]
pub fn skew_nest_for_tilability(
    nest: &mut Node,
    scop: &Scop,
    schedules: &[Schedule],
    podg: &Podg,
    stmts: &[usize],
    depth: usize,
) -> Option<Vec<(Vec<DepElem>, bool)>> {
    use polymix_deps::dep_vector_transformed;
    // Current row-combination matrix (identity = no skew yet).
    let mut cmat: Vec<Vec<i64>> = (0..depth)
        .map(|k| {
            let mut r = vec![0i64; depth];
            r[k] = 1;
            r
        })
        .collect();
    let deps: Vec<&polymix_deps::Dep> = podg
        .deps
        .iter()
        .filter(|d| stmts.contains(&d.src.0) && stmts.contains(&d.dst.0))
        .collect();
    let compute = |cmat: &[Vec<i64>]| -> Vec<(Vec<DepElem>, bool)> {
        deps.iter()
            .map(|d| {
                (
                    dep_vector_transformed(
                        d,
                        &schedules[d.src.0],
                        &schedules[d.dst.0],
                        cmat,
                        &scop.default_params,
                    ),
                    d.is_reduction,
                )
            })
            .collect()
    };
    let mut vecs = compute(&cmat);
    let bad_at = |vecs: &[(Vec<DepElem>, bool)], k: usize| -> usize {
        vecs.iter()
            .filter(|(v, _)| {
                v[..k].iter().all(|e| e.is_nonneg()) && v[k].may_be_negative()
            })
            .count()
    };
    for k in 1..depth {
        let mut guard = 0;
        while bad_at(&vecs, k) > 0 {
            guard += 1;
            if guard > depth * 4 {
                return None;
            }
            let mut fixed = false;
            'search: for j in (0..k).rev() {
                for f in 1..=4i64 {
                    let mut trial = cmat.clone();
                    for idx in 0..depth {
                        trial[k][idx] += f * cmat[j][idx];
                    }
                    let tv = compute(&trial);
                    // Accept when this strictly reduces the bad count at k
                    // without breaking outer levels.
                    let outer_ok = (0..k).all(|m| bad_at(&tv, m) == 0);
                    if outer_ok && bad_at(&tv, k) < bad_at(&vecs, k) {
                        apply_skew_at(nest, k, j, f)?;
                        cmat = trial;
                        vecs = tv;
                        fixed = true;
                        break 'search;
                    }
                }
            }
            if !fixed {
                return None;
            }
        }
    }
    Some(vecs)
}

/// Skews every level-`k` loop of the nest by `factor ×` the variable of
/// its enclosing level-`j` loop. Returns `None` if the structure has no
/// loop at those levels.
fn apply_skew_at(node: &mut Node, k: usize, j: usize, factor: i64) -> Option<()> {
    // Collect (outer_var at level j, inner loop var at level k) pairs.
    fn walk(node: &mut Node, level: usize, j: usize, k: usize, outer: Option<usize>, out: &mut Vec<(usize, usize)>) {
        match node {
            Node::Seq(xs) => xs
                .iter_mut()
                .for_each(|x| walk(x, level, j, k, outer, out)),
            Node::Guard(_, b) => walk(b, level, j, k, outer, out),
            Node::Loop(l) => {
                let outer = if level == j { Some(l.var) } else { outer };
                if level == k {
                    if let Some(o) = outer {
                        out.push((o, l.var));
                    }
                } else {
                    walk(&mut l.body, level + 1, j, k, outer, out);
                }
            }
            Node::Stmt(_) => {}
        }
    }
    let mut pairs = Vec::new();
    walk(node, 0, j, k, None, &mut pairs);
    if pairs.is_empty() {
        return None;
    }
    for (outer, inner) in pairs {
        transforms::skew(node, inner, outer, factor);
    }
    Some(())
}

/// Marks the outermost parallel level of the nest (Sec. IV-A strategy:
/// "always use the loop parallelism at the outermost possible level
/// regardless of kind"). When `doall_only` is set, only [`Par::Doall`]
/// levels are considered (the comparison mode of Fig. 5).
/// Returns the chosen `(level, kind)`.
pub fn mark_parallelism(
    nest: &mut Node,
    vectors: &[(Vec<DepElem>, bool)],
    depth: usize,
    doall_only: bool,
) -> Option<(usize, LoopParallelism)> {
    let found = if doall_only {
        (0..depth).find_map(|k| {
            let c = polymix_ast::parallel::classify_level_in_nest(vectors, k, depth);
            (c == LoopParallelism::Doall).then_some((k, c))
        })
    } else {
        outermost_parallel(vectors, depth)
    }?;
    let (level, kind) = found;
    let par = match kind {
        LoopParallelism::Doall => Par::Doall,
        LoopParallelism::Reduction => Par::Reduction,
        LoopParallelism::Pipeline | LoopParallelism::ReductionPipeline => Par::Pipeline,
        LoopParallelism::Sequential => return None,
    };
    mark_level(nest, 0, level, par);
    Some(found)
}

fn mark_level(node: &mut Node, level: usize, target: usize, par: Par) {
    match node {
        Node::Seq(xs) => xs
            .iter_mut()
            .for_each(|x| mark_level(x, level, target, par)),
        Node::Guard(_, b) => mark_level(b, level, target, par),
        Node::Loop(l) => {
            if level == target {
                l.par = par;
            } else {
                mark_level(&mut l.body, level + 1, target, par);
            }
        }
        Node::Stmt(_) => {}
    }
}

/// Applies register tiling (unroll-and-jam, Sec. IV-C) to every innermost
/// perfect loop pair of the program whose bounds allow it, repairing the
/// jammed inner loop's parallel annotation against `vectors` (see
/// [`repair_jam_mark`]). Callers without dependence information (plain
/// unroll of dependence-free nests) may pass empty slices, which keeps
/// every mark.
pub fn register_tile(
    node: &mut Node,
    outer_factor: i64,
    inner_factor: i64,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
) {
    match node {
        Node::Seq(xs) => xs
            .iter_mut()
            .for_each(|x| register_tile(x, outer_factor, inner_factor, vectors, endpoints)),
        Node::Guard(_, b) => register_tile(b, outer_factor, inner_factor, vectors, endpoints),
        Node::Loop(l) => {
            // Innermost perfect pair: this loop + single child loop whose
            // body has no loops.
            let is_pair = matches!(&l.body, Node::Loop(inner) if node_depth(&inner.body) == 0);
            if is_pair && outer_factor > 1 {
                if let Some(jammed) = transforms::unroll_and_jam(l, outer_factor) {
                    if let Node::Loop(mut new_l) = jammed {
                        // Repair the inner mark while the jammed body is
                        // still a single loop (unrolling below may split
                        // it into a main/epilogue sequence).
                        repair_jam_mark(&mut new_l, outer_factor, vectors, endpoints);
                        // Optionally unroll the (jammed) inner loop too;
                        // an error keeps the merely jammed form.
                        if inner_factor > 1 {
                            if let Node::Loop(inner) = &new_l.body {
                                if inner.step == 1 {
                                    if let Ok(u) = transforms::unroll(inner, inner_factor) {
                                        new_l.body = u;
                                    }
                                }
                            }
                        }
                        *l = new_l;
                        return;
                    }
                }
            }
            if node_depth(&l.body) == 0 && inner_factor > 1 && l.step == 1 {
                // Bare innermost loop: plain unroll; on error keep the
                // rolled loop (the transform is an optimization only).
                if let Ok(Node::Loop(new_l)) = transforms::unroll(l, inner_factor) {
                    **l = *new_l;
                }
                return;
            }
            register_tile(&mut l.body, outer_factor, inner_factor, vectors, endpoints);
        }
        Node::Stmt(_) => {}
    }
}

/// Post-jam repair of the inner loop's parallel annotation.
///
/// Unroll-and-jam moves `outer_factor` consecutive outer iterations
/// *inside* each iteration of the jammed inner loop. Before the jam,
/// a dependence between outer iterations `i` and `i + k`
/// (`0 < k < outer_factor`) was discharged by outer sequentiality no
/// matter its inner component; afterwards both endpoints co-reside in
/// one replica block, so a nonzero inner component means the *inner*
/// loop now carries the dependence. A `Doall` or `Reduction` mark kept
/// there from before the jam would let one worker's replica read
/// another worker's half-updated cell (reduction-flagged self-updates
/// stay exempt under `Reduction`: the emitter privatizes the
/// accumulator per worker).
///
/// Vector dimensions are transformed schedule levels, so the jammed
/// pair's dimensions are recovered from the statements' own depth: for
/// statements of schedule dimension `n` under an innermost pair the
/// outer/inner loops sit at levels `n-2` and `n-1` (`dep_vector` pads
/// levels past a statement's schedule with zeros). Statements of mixed
/// depth under one pair are out of model and demote conservatively.
fn repair_jam_mark(
    jammed: &mut polymix_ast::tree::Loop,
    outer_factor: i64,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
) {
    let Node::Loop(inner) = &mut jammed.body else {
        return;
    };
    if !matches!(inner.par, Par::Doall | Par::Reduction) {
        return;
    }
    let mut inside: Vec<usize> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    inner.body.visit_stmts(&mut |s| {
        if !inside.contains(&s.stmt_idx) {
            inside.push(s.stmt_idx);
        }
        if !dims.contains(&s.iter_exprs.len()) {
            dims.push(s.iter_exprs.len());
        }
    });
    let pair_dims = match dims[..] {
        [n] if n >= 2 => Some((n - 2, n - 1)),
        _ => None,
    };
    let hazardous = vectors.iter().zip(endpoints).any(|((v, red), (src, dst))| {
        if !inside.contains(src) || !inside.contains(dst) {
            return false; // endpoint outside the jammed block
        }
        if inner.par == Par::Reduction && *red {
            return false; // privatized accumulator self-update
        }
        let Some((dout, din)) = pair_dims else {
            return true; // unmodeled shape: any internal dependence demotes
        };
        // Co-residence in one replica block needs equality at every
        // enclosing level and an outer distance inside the block.
        let elsewhere_zero = v
            .iter()
            .enumerate()
            .all(|(k, e)| k == dout || k == din || e.is_zero());
        let outer_in_block = match v.get(dout).copied().unwrap_or(DepElem::Const(0)) {
            DepElem::Const(c) => c != 0 && c.abs() < outer_factor,
            _ => true, // direction-only element: distance unbounded but >= 1 possible
        };
        let inner_carries = !v.get(din).copied().unwrap_or(DepElem::Const(0)).is_zero();
        elsewhere_zero && outer_in_block && inner_carries
    });
    if hazardous {
        inner.par = Par::Seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_poly::original_program;
    use polymix_ast::interp::{alloc_arrays, execute};
    use polymix_deps::build_podg;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    /// seidel-like kernel: negative inner dependence component before
    /// skewing: A[i][j] = A[i-1][j+1] + A[i][j-1].
    fn antidiag() -> polymix_ir::Scop {
        let mut b = ScopBuilder::new("anti", &["N"], &[8]);
        b.assume_params_at_least(3);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(1), par("N") - con(1));
        let body = Expr::add(
            b.rd(a, &[ix("i") - con(1), ix("j") + con(1)]),
            b.rd(a, &[ix("i"), ix("j") - con(1)]),
        );
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }

    #[test]
    fn skewing_repairs_negative_components_and_preserves_semantics() {
        let scop = antidiag();
        let podg = build_podg(&scop);
        let schedules: Vec<_> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let mut prog = original_program(&scop).expect("original program");
        let infos = nest_infos(&scop, &schedules, &podg, &prog);
        assert_eq!(infos.len(), 1);
        // There must be a negative element before skewing.
        assert!(infos[0]
            .vectors
            .iter()
            .any(|(v, _)| v.iter().any(|e| e.may_be_negative())));
        let mut body = prog.body.clone();
        let stmts: Vec<usize> = infos[0].stmts.clone();
        let fixed = skew_nest_for_tilability(
            &mut body,
            &scop,
            &schedules,
            &podg,
            &stmts,
            infos[0].depth,
        )
        .expect("skewable");
        assert!(fixed
            .iter()
            .all(|(v, _)| v.iter().all(|e| e.is_nonneg())), "{fixed:?}");
        prog.body = body;
        // Semantics preserved.
        let reference = {
            let p0 = original_program(&scop).expect("original program");
            let mut arrays = alloc_arrays(&scop, &[8]);
            for (k, x) in arrays[0].iter_mut().enumerate() {
                *x = (k % 7) as f64;
            }
            execute(&p0, &[8], &mut arrays);
            arrays
        };
        let mut arrays = alloc_arrays(&scop, &[8]);
        for (k, x) in arrays[0].iter_mut().enumerate() {
            *x = (k % 7) as f64;
        }
        execute(&prog, &[8], &mut arrays);
        assert_eq!(arrays[0], reference[0]);
    }

    #[test]
    fn parallel_marking_picks_outermost_level() {
        // Vertical-only dependence: level 0 carried, level 1 doall... with
        // uniform (1,0) the detector reports pipeline at level 0 (valid and
        // outermost); doall_only mode must pick level 1 instead.
        let mut b = ScopBuilder::new("vert", &["N"], &[8]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(0), par("N"));
        let body = b.rd(a, &[ix("i") - con(1), ix("j")]);
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let podg = build_podg(&scop);
        let schedules: Vec<_> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let prog = original_program(&scop).expect("original program");
        let infos = nest_infos(&scop, &schedules, &podg, &prog);
        let mut body = prog.body.clone();
        let res = mark_parallelism(&mut body, &infos[0].vectors, infos[0].depth, false);
        assert_eq!(res, Some((0, LoopParallelism::Pipeline)));
        let mut body2 = prog.body.clone();
        let res2 = mark_parallelism(&mut body2, &infos[0].vectors, infos[0].depth, true);
        assert_eq!(res2.map(|(k, _)| k), Some(1));
        // The marks landed on the right loops.
        if let Node::Loop(l) = &body {
            assert_eq!(l.par, Par::Pipeline);
        }
        if let Node::Loop(l) = &body2 {
            assert_eq!(l.par, Par::Seq);
            if let Node::Loop(inner) = &l.body {
                assert_eq!(inner.par, Par::Doall);
            }
        }
    }

    #[test]
    fn register_tiling_preserves_semantics() {
        let mut b = ScopBuilder::new("grid", &["N"], &[9]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let body = Expr::add(b.rd(a, &[ix("i"), ix("j")]), Expr::Const(1.0));
        b.stmt("S", a, &[ix("i"), ix("j")], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        let mut prog = original_program(&scop).expect("original program");
        register_tile(&mut prog.body, 2, 4, &[], &[]);
        let mut arrays = alloc_arrays(&scop, &[9]);
        execute(&prog, &[9], &mut arrays);
        assert_eq!(arrays[0], vec![1.0; 81]);
    }

    #[test]
    fn nest_infos_counts_nests_and_stmts() {
        let scop = antidiag();
        let podg = build_podg(&scop);
        let schedules: Vec<_> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let prog = original_program(&scop).expect("original program");
        let infos = nest_infos(&scop, &schedules, &podg, &prog);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].stmts, vec![0]);
        assert_eq!(infos[0].depth, 2);
        assert!(!infos[0].vectors.is_empty());
    }
}

/// Longest prefix of loop levels on which *every* dependence vector is
/// non-negative — the outermost fully-permutable (tilable) band.
pub fn tilable_prefix(vectors: &[(Vec<DepElem>, bool)], depth: usize) -> usize {
    let mut m = 0;
    for k in 0..depth {
        let ok = vectors
            .iter()
            .all(|(v, _)| v.get(k).copied().unwrap_or(DepElem::Const(0)).is_nonneg());
        if ok {
            m = k + 1;
        } else {
            break;
        }
    }
    m
}

/// Legality-aware tiling of one nest (Sec. IV-B):
///
/// 1. If the outermost `m = tilable_prefix(...)` levels form a band of
///    depth ≥ 2, try the *joint* (imperfect-nest capable) tiling first —
///    this is what gives stencils their time tiles. The first band level
///    uses `time_tile`, the rest `tile`.
/// 2. Otherwise (or for the structure below the band) tile every maximal
///    *perfect* chain of depth ≥ 2 whose levels are dependence-safe.
///
/// Returns the tiled nest.
pub fn tile_nest(
    prog: &mut Program,
    nest: Node,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
    depth: usize,
    tile: i64,
    time_tile: i64,
) -> Node {
    let m = tilable_prefix(vectors, depth);
    // Try the joint (imperfect-capable) tiling at the full permutable
    // band first, then at shorter prefixes: a statement shallower than
    // the band blocks the full-depth form (it would be re-executed per
    // tile), but a 2-level joint tiling of, say, a fused (i, j) prefix is
    // still far better than none.
    for band in (2..=m).rev() {
        let mut sizes = vec![tile; band];
        sizes[0] = time_tile;
        if let Some(mut tiled) = transforms::tile_imperfect(prog, nest.clone(), &sizes) {
            repair_ctrl_marks(&mut tiled, vectors, endpoints, 0, band, false);
            // Tile any perfect chains left below the band's point loops.
            return descend_tile_chains(prog, tiled, vectors, endpoints, 2 * band, band, tile);
        }
    }
    // Fallback: tile perfect chains, checking per-chain legality.
    tile_chains(prog, nest, vectors, endpoints, 0, tile)
}

/// Recursively tiles maximal perfect chains of depth ≥ 2 starting at
/// loop level `level`, when the chain's levels are dependence-safe:
/// every vector that is zero before the chain must be non-negative on the
/// chain's levels.
fn tile_chains(
    prog: &mut Program,
    node: Node,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
    level: usize,
    tile: i64,
) -> Node {
    match node {
        Node::Seq(xs) => Node::Seq(
            xs.into_iter()
                .map(|x| tile_chains(prog, x, vectors, endpoints, level, tile))
                .collect(),
        ),
        Node::Guard(g, b) => Node::Guard(
            g,
            Box::new(tile_chains(prog, *b, vectors, endpoints, level, tile)),
        ),
        Node::Stmt(s) => Node::Stmt(s),
        Node::Loop(l) => {
            let node = Node::Loop(l);
            let len = transforms::band_depth(&node);
            let legal = len >= 2 && chain_legal(vectors, endpoints, &node, level, len);
            if legal {
                let sizes = vec![tile; len];
                // Tiling is an optimization: on error keep the chain
                // untiled rather than aborting the pipeline.
                if let Ok(mut tiled) = transforms::tile_band(prog, node.clone(), &sizes) {
                    repair_ctrl_marks(&mut tiled, vectors, endpoints, level, len, true);
                    return tiled;
                }
            }
            match node {
                Node::Loop(mut l) => {
                    l.body = tile_chains(prog, l.body, vectors, endpoints, level + 1, tile);
                    Node::Loop(l)
                }
                other => other,
            }
        }
    }
}

/// Descends past `skip` loop levels (the freshly created tile loops plus
/// the clamped band) and tiles perfect chains in the interior; `base` is
/// the nest level the interior starts at.
fn descend_tile_chains(
    prog: &mut Program,
    node: Node,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
    skip: usize,
    base: usize,
    tile: i64,
) -> Node {
    if skip == 0 {
        return tile_chains(prog, node, vectors, endpoints, base, tile);
    }
    match node {
        Node::Loop(mut l) => {
            l.body = descend_tile_chains(prog, l.body, vectors, endpoints, skip - 1, base, tile);
            Node::Loop(l)
        }
        other => tile_chains(prog, other, vectors, endpoints, base, tile),
    }
}

/// Legality of tiling the chain rooted at `node`: only dependences whose
/// endpoints are **both inside the chain** constrain it (cross-statement
/// vectors compare unrelated distributed loops and would conservatively
/// forbid everything), and only those not carried by an outer level.
fn chain_legal(
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
    node: &Node,
    from: usize,
    len: usize,
) -> bool {
    let mut inside: Vec<usize> = Vec::new();
    node.visit_stmts(&mut |s| {
        if !inside.contains(&s.stmt_idx) {
            inside.push(s.stmt_idx);
        }
    });
    vectors.iter().zip(endpoints).all(|((v, _), &(src, dst))| {
        if !inside.contains(&src) || !inside.contains(&dst) {
            return true; // endpoint outside the chain: ordered elsewhere
        }
        let outer_zero = v[..from.min(v.len())].iter().all(|e| e.is_zero());
        if !outer_zero {
            return true; // carried outside the chain: safe
        }
        (from..from + len).all(|k| v.get(k).copied().unwrap_or(DepElem::Const(0)).is_nonneg())
    })
}

/// Post-tiling repair of migrated parallel marks.
///
/// `tile_band` / `tile_imperfect` move a point loop's annotation onto its
/// new tile controller, but point-level legality does not imply
/// tile-granularity legality: a dependence carried by a *deeper* point
/// level no longer orders cross-tile pairs, because that point loop now
/// runs inside each tile task. (Pre-tiling, `doall` at level `d` may be
/// justified by a carry at some sequential level `i < d`; after tiling,
/// point level `i` sits *below* controller `d` and the discharge
/// evaporates.) A controller at band dimension `from + j` may keep
/// `Doall`/`Reduction` only when every dependence between statements of
/// the tiled subtree that is not carried outside the band is zero at that
/// dimension — reduction self-updates excepted for `Reduction`, which
/// privatizes its accumulator per worker.
///
/// Demoted controllers fall back to sequential; with `restore_points`
/// (perfect `tile_band` chains) the mark is re-applied to the matching
/// point loop, where the original point-granularity argument still holds.
fn repair_ctrl_marks(
    node: &mut Node,
    vectors: &[(Vec<DepElem>, bool)],
    endpoints: &[(usize, usize)],
    from: usize,
    band: usize,
    restore_points: bool,
) {
    let mut inside: Vec<usize> = Vec::new();
    node.visit_stmts(&mut |s| {
        if !inside.contains(&s.stmt_idx) {
            inside.push(s.stmt_idx);
        }
    });
    let relevant: Vec<(&[DepElem], bool)> = vectors
        .iter()
        .zip(endpoints)
        .filter(|(_, (src, dst))| inside.contains(src) && inside.contains(dst))
        .map(|((v, red), _)| (v.as_slice(), *red))
        .filter(|(v, _)| v[..from.min(v.len())].iter().all(|e| e.is_zero()))
        .collect();
    let mut cur = &mut *node;
    let mut saved: Vec<(usize, Par)> = Vec::new();
    for j in 0..band {
        let Node::Loop(l) = cur else { return };
        let d = from + j;
        let zero_at = |exempt_reductions: bool| {
            relevant.iter().all(|(v, red)| {
                (exempt_reductions && *red)
                    || v.get(d).copied().unwrap_or(DepElem::Const(0)).is_zero()
            })
        };
        let tile_safe = match l.par {
            Par::Doall => zero_at(false),
            Par::Reduction => zero_at(true),
            _ => true,
        };
        if !tile_safe {
            saved.push((j, l.par));
            l.par = Par::Seq;
        }
        cur = &mut l.body;
    }
    if !restore_points || saved.is_empty() {
        return;
    }
    // `cur` now sits at the first point loop; band dimension `j`'s point
    // loop is `j` levels further down the perfect chain.
    let mut j = 0usize;
    while let Node::Loop(l) = cur {
        if let Some(&(_, p)) = saved.iter().find(|(k, _)| *k == j) {
            l.par = p;
        }
        j += 1;
        if j >= band {
            return;
        }
        cur = &mut l.body;
    }
}

