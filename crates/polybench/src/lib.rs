//! # polymix-polybench
//!
//! The PolyBench/C 3.2 kernel suite (the 22 benchmarks of the paper's
//! Table II), each provided as:
//!
//! * a **SCoP builder** producing the polyhedral IR the optimizers
//!   consume,
//! * a **native Rust reference implementation** mirroring the original C
//!   loop nests statement-for-statement — the semantic gold standard the
//!   interpreter-based equivalence tests compare against,
//! * a **FLOP formula** (the same closed forms PolyBench's own GFLOP/s
//!   reporting uses),
//! * **datasets** (mini / small / standard / large) scaled so that `mini`
//!   suits exhaustive interpretation and `standard` suits wall-clock
//!   benchmarking on one machine (see EXPERIMENTS.md for the mapping to
//!   the paper's sizes),
//! * a deterministic **initialization** shared between the reference
//!   runner and emitted standalone programs. Scalar temporaries of the
//!   original C (e.g. cholesky's `x`, symm's `acc`) are expanded into
//!   arrays, the standard scalar-expansion preprocessing polyhedral
//!   tools apply; `alpha`/`beta` constants are inlined as literals.

pub mod kernel;
pub mod kernels_blas;
pub mod kernels_extended;
pub mod kernels_solver;
pub mod kernels_stat;
pub mod kernels_stencil;
pub mod suite;

pub use kernel::{Dataset, Group, InitSpec, Kernel};
pub use suite::{all_kernels, extended_kernels, kernel_by_name};
