//! Solver kernels: `trisolv`, `cholesky`, `adi`.
//!
//! `cholesky`'s scalar temporary `x` is expanded into the arrays
//! `tmpd[i]` (diagonal accumulator) and `tmpo[i][j]` (off-diagonal
//! accumulator), the standard scalar-expansion preprocessing. `adi`
//! follows the PolyBench/C 3.2 alternating-direction sweeps; its inputs
//! are scaled/offset so the repeated divisions stay well-conditioned
//! (see `InitSpec`).

use crate::kernel::{Dataset, Group, InitSpec, Kernel};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Scop};

fn a(v: f64) -> Expr {
    Expr::Const(v)
}

// ------------------------------------------------------------- trisolv --

/// `trisolv`: forward substitution `L·x = c`.
pub fn trisolv() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("trisolv", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let x = b.array("x", &["N"]);
        let c = b.array("c", &["N"]);
        b.enter("i", con(0), par("N"));
        let c0 = b.rd(c, &[ix("i")]);
        b.stmt("S0", x, &[ix("i")], c0);
        b.enter("j", con(0), ix("i"));
        let prod = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(x, &[ix("j")]));
        b.stmt_update("S1", x, &[ix("i")], BinOp::Sub, prod);
        b.exit();
        let fin = Expr::div(b.rd(x, &[ix("i")]), b.rd(aa, &[ix("i"), ix("i")]));
        b.stmt("S2", x, &[ix("i")], fin);
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &aa[0];
        let (x, c) = rest.split_at_mut(1);
        let (x, c) = (&mut x[0], &c[0]);
        for i in 0..n {
            x[i] = c[i];
            for j in 0..i {
                x[i] -= aa[i * n + j] * x[j];
            }
            x[i] /= aa[i * n + i];
        }
    }
    Kernel {
        name: "trisolv",
        description: "Triangular solver",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[0] * p[0] + 2 * p[0]) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![16] },
                Dataset { name: "small", params: vec![128] },
                Dataset { name: "standard", params: vec![1024] },
                Dataset { name: "large", params: vec![2048] },
            ]
        },
        init: InitSpec::diag(&[0]),
    }
}

// ------------------------------------------------------------ cholesky --

/// `cholesky`: in-place Cholesky factorization of a diagonally dominant
/// (hence positive definite) matrix.
pub fn cholesky() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("cholesky", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let pp = b.array("p", &["N"]);
        let tmpd = b.array("tmpd", &["N"]);
        let tmpo = b.array("tmpo", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        let d0 = b.rd(aa, &[ix("i"), ix("i")]);
        b.stmt("S0", tmpd, &[ix("i")], d0);
        b.enter("j", con(0), ix("i"));
        let sq = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(aa, &[ix("i"), ix("j")]));
        b.stmt_update("S1", tmpd, &[ix("i")], BinOp::Sub, sq);
        b.exit();
        let inv = Expr::div(a(1.0), Expr::sqrt(b.rd(tmpd, &[ix("i")])));
        b.stmt("S2", pp, &[ix("i")], inv);
        b.enter("j", ix("i") + con(1), par("N"));
        let o0 = b.rd(aa, &[ix("i"), ix("j")]);
        b.stmt("S3", tmpo, &[ix("i"), ix("j")], o0);
        b.enter("k", con(0), ix("i"));
        let prod = Expr::mul(b.rd(aa, &[ix("j"), ix("k")]), b.rd(aa, &[ix("i"), ix("k")]));
        b.stmt_update("S4", tmpo, &[ix("i"), ix("j")], BinOp::Sub, prod);
        b.exit();
        let fin = Expr::mul(b.rd(tmpo, &[ix("i"), ix("j")]), b.rd(pp, &[ix("i")]));
        b.stmt("S5", aa, &[ix("j"), ix("i")], fin);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &mut aa[0];
        let (pp, rest2) = rest.split_at_mut(1);
        let pp = &mut pp[0];
        let (tmpd, tmpo) = rest2.split_at_mut(1);
        let (tmpd, tmpo) = (&mut tmpd[0], &mut tmpo[0]);
        for i in 0..n {
            tmpd[i] = aa[i * n + i];
            for j in 0..i {
                tmpd[i] -= aa[i * n + j] * aa[i * n + j];
            }
            pp[i] = 1.0 / tmpd[i].sqrt();
            for j in i + 1..n {
                tmpo[i * n + j] = aa[i * n + j];
                for k in 0..i {
                    tmpo[i * n + j] -= aa[j * n + k] * aa[i * n + k];
                }
                aa[j * n + i] = tmpo[i * n + j] * pp[i];
            }
        }
    }
    Kernel {
        name: "cholesky",
        description: "Cholesky Decomposition",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| ((p[0] * p[0] * p[0]) / 3 + 2 * p[0] * p[0]) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![16] },
                Dataset { name: "small", params: vec![128] },
                Dataset { name: "standard", params: vec![512] },
                Dataset { name: "large", params: vec![1024] },
            ]
        },
        init: InitSpec::diag(&[0]),
    }
}

// ----------------------------------------------------------------- adi --

/// `adi`: alternating-direction-implicit sweeps (PolyBench/C 3.2 shape:
/// forward elimination and back-substitution along rows, then columns,
/// repeated `TSTEPS` times).
pub fn adi() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("adi", &["TSTEPS", "N"], &[3, 8]);
        b.assume_params_at_least(3);
        let x = b.array("X", &["N", "N"]);
        let aa = b.array("A", &["N", "N"]);
        let bb = b.array("B", &["N", "N"]);
        let n = || par("N");
        b.enter("t", con(0), par("TSTEPS"));
        // Row-wise forward elimination.
        b.enter("i1", con(0), n());
        b.enter("i2", con(1), n());
        let e = Expr::sub(
            b.rd(x, &[ix("i1"), ix("i2")]),
            Expr::div(
                Expr::mul(
                    b.rd(x, &[ix("i1"), ix("i2") - con(1)]),
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                ),
                b.rd(bb, &[ix("i1"), ix("i2") - con(1)]),
            ),
        );
        b.stmt("S0", x, &[ix("i1"), ix("i2")], e);
        let e = Expr::sub(
            b.rd(bb, &[ix("i1"), ix("i2")]),
            Expr::div(
                Expr::mul(
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                ),
                b.rd(bb, &[ix("i1"), ix("i2") - con(1)]),
            ),
        );
        b.stmt("S1", bb, &[ix("i1"), ix("i2")], e);
        b.exit();
        b.exit();
        // Row-wise normalization of the last column.
        b.enter("i1", con(0), n());
        let e = Expr::div(
            b.rd(x, &[ix("i1"), par("N") - con(1)]),
            b.rd(bb, &[ix("i1"), par("N") - con(1)]),
        );
        b.stmt("S2", x, &[ix("i1"), par("N") - con(1)], e);
        b.exit();
        // Row-wise back substitution.
        b.enter("i1", con(0), n());
        b.enter("i2", con(0), n() - con(2));
        let e = Expr::div(
            Expr::sub(
                b.rd(x, &[ix("i1"), par("N") - ix("i2") - con(2)]),
                Expr::mul(
                    b.rd(x, &[ix("i1"), par("N") - ix("i2") - con(3)]),
                    b.rd(aa, &[ix("i1"), par("N") - ix("i2") - con(3)]),
                ),
            ),
            b.rd(bb, &[ix("i1"), par("N") - ix("i2") - con(3)]),
        );
        b.stmt("S3", x, &[ix("i1"), par("N") - ix("i2") - con(2)], e);
        b.exit();
        b.exit();
        // Column-wise forward elimination.
        b.enter("i1", con(1), n());
        b.enter("i2", con(0), n());
        let e = Expr::sub(
            b.rd(x, &[ix("i1"), ix("i2")]),
            Expr::div(
                Expr::mul(
                    b.rd(x, &[ix("i1") - con(1), ix("i2")]),
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                ),
                b.rd(bb, &[ix("i1") - con(1), ix("i2")]),
            ),
        );
        b.stmt("S4", x, &[ix("i1"), ix("i2")], e);
        let e = Expr::sub(
            b.rd(bb, &[ix("i1"), ix("i2")]),
            Expr::div(
                Expr::mul(
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                    b.rd(aa, &[ix("i1"), ix("i2")]),
                ),
                b.rd(bb, &[ix("i1") - con(1), ix("i2")]),
            ),
        );
        b.stmt("S5", bb, &[ix("i1"), ix("i2")], e);
        b.exit();
        b.exit();
        // Column-wise normalization of the last row.
        b.enter("i2", con(0), n());
        let e = Expr::div(
            b.rd(x, &[par("N") - con(1), ix("i2")]),
            b.rd(bb, &[par("N") - con(1), ix("i2")]),
        );
        b.stmt("S6", x, &[par("N") - con(1), ix("i2")], e);
        b.exit();
        // Column-wise back substitution.
        b.enter("i1", con(0), n() - con(2));
        b.enter("i2", con(0), n());
        let e = Expr::div(
            Expr::sub(
                b.rd(x, &[par("N") - ix("i1") - con(2), ix("i2")]),
                Expr::mul(
                    b.rd(x, &[par("N") - ix("i1") - con(3), ix("i2")]),
                    b.rd(aa, &[par("N") - ix("i1") - con(3), ix("i2")]),
                ),
            ),
            b.rd(bb, &[par("N") - ix("i1") - con(2), ix("i2")]),
        );
        b.stmt("S7", x, &[par("N") - ix("i1") - con(2), ix("i2")], e);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (tsteps, n) = (p[0] as usize, p[1] as usize);
        let (x, rest) = arr.split_at_mut(1);
        let x = &mut x[0];
        let (aa, bb) = rest.split_at_mut(1);
        let (aa, bb) = (&aa[0], &mut bb[0]);
        for _t in 0..tsteps {
            for i1 in 0..n {
                for i2 in 1..n {
                    x[i1 * n + i2] -=
                        x[i1 * n + i2 - 1] * aa[i1 * n + i2] / bb[i1 * n + i2 - 1];
                    bb[i1 * n + i2] -=
                        aa[i1 * n + i2] * aa[i1 * n + i2] / bb[i1 * n + i2 - 1];
                }
            }
            for i1 in 0..n {
                x[i1 * n + n - 1] /= bb[i1 * n + n - 1];
            }
            for i1 in 0..n {
                for i2 in 0..n - 2 {
                    x[i1 * n + (n - i2 - 2)] = (x[i1 * n + (n - 2 - i2)]
                        - x[i1 * n + (n - i2 - 3)] * aa[i1 * n + (n - i2 - 3)])
                        / bb[i1 * n + (n - i2 - 3)];
                }
            }
            for i1 in 1..n {
                for i2 in 0..n {
                    x[i1 * n + i2] -=
                        x[(i1 - 1) * n + i2] * aa[i1 * n + i2] / bb[(i1 - 1) * n + i2];
                    bb[i1 * n + i2] -=
                        aa[i1 * n + i2] * aa[i1 * n + i2] / bb[(i1 - 1) * n + i2];
                }
            }
            for i2 in 0..n {
                x[(n - 1) * n + i2] /= bb[(n - 1) * n + i2];
            }
            for i1 in 0..n - 2 {
                for i2 in 0..n {
                    x[(n - i1 - 2) * n + i2] = (x[(n - 2 - i1) * n + i2]
                        - x[(n - i1 - 3) * n + i2] * aa[(n - 3 - i1) * n + i2])
                        / bb[(n - 2 - i1) * n + i2];
                }
            }
        }
    }
    Kernel {
        name: "adi",
        description: "Alternating Direction Implicit solver",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[0] * (8 * p[1] * p[1] + 2 * p[1] + 8 * p[1] * (p[1] - 2))) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![3, 12] },
                Dataset { name: "small", params: vec![4, 64] },
                Dataset { name: "standard", params: vec![10, 512] },
                Dataset { name: "large", params: vec![20, 1024] },
            ]
        },
        // Keep divisors away from zero: A small, B offset above 2.
        init: InitSpec {
            diag_boost: vec![],
            scale: vec![(1, 0.2)],
            offset: vec![(2, 2.0)],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_kernels_build_and_run_finite() {
        for k in [trisolv(), cholesky(), adi()] {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut arrays = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut arrays);
            for (ai, arr) in arrays.iter().enumerate() {
                assert!(
                    arr.iter().all(|x| x.is_finite()),
                    "{} array {ai} non-finite",
                    k.name
                );
            }
        }
    }

    #[test]
    fn trisolv_solves_lower_triangular_system() {
        let k = trisolv();
        let scop = (k.build)();
        let params = vec![8i64];
        let mut arrays = k.fresh_arrays(&scop, &params);
        let a0 = arrays[0].clone();
        let c0 = arrays[2].clone();
        (k.reference)(&params, &mut arrays);
        let x = &arrays[1];
        // Verify L·x == c on the lower triangle.
        for i in 0..8 {
            let mut s = 0.0;
            for j in 0..=i {
                s += a0[i * 8 + j] * x[j];
            }
            assert!((s - c0[i]).abs() < 1e-9, "row {i}: {s} vs {}", c0[i]);
        }
    }

    #[test]
    fn cholesky_produces_valid_factor() {
        let k = cholesky();
        let scop = (k.build)();
        let params = vec![6i64];
        let mut arrays = k.fresh_arrays(&scop, &params);
        let orig = arrays[0].clone();
        (k.reference)(&params, &mut arrays);
        let n = 6usize;
        let aa = &arrays[0];
        let pp = &arrays[1];
        // L[i][i] = 1/p[i], L[i][j] = A[i][j] for j < i (written by S5).
        // Check L·Lᵀ ≈ original A on the lower triangle.
        let l = |i: usize, j: usize| -> f64 {
            if i == j {
                1.0 / pp[i]
            } else if j < i {
                aa[i * n + j]
            } else {
                0.0
            }
        };
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for kk in 0..=j {
                    s += l(i, kk) * l(j, kk);
                }
                // The kernel reads only the *upper* triangle of the input
                // (plus the diagonal), so L·Lᵀ reconstructs the symmetric
                // matrix whose lower half mirrors orig's upper half.
                assert!(
                    (s - orig[j * n + i]).abs() < 1e-6,
                    "LL^T[{i}][{j}] = {s} vs {}",
                    orig[j * n + i]
                );
            }
        }
    }
}
