//! Linear-algebra PolyBench kernels (BLAS-like and solver front-ends).
//!
//! Each `pub fn <name>() -> Kernel` pairs a SCoP builder with a native
//! Rust reference implementation that mirrors the original C loop nests
//! statement-for-statement (array order identical to the SCoP's
//! declarations). `alpha = 1.5`, `beta = 1.2` throughout.

use crate::kernel::{Dataset, Group, InitSpec, Kernel};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Scop};

pub(crate) const ALPHA: f64 = 1.5;
pub(crate) const BETA: f64 = 1.2;

fn a(v: f64) -> Expr {
    Expr::Const(v)
}

macro_rules! datasets {
    ($mini:expr, $small:expr, $standard:expr, $large:expr, $n:expr) => {
        || {
            vec![
                Dataset {
                    name: "mini",
                    params: vec![$mini; $n],
                },
                Dataset {
                    name: "small",
                    params: vec![$small; $n],
                },
                Dataset {
                    name: "standard",
                    params: vec![$standard; $n],
                },
                Dataset {
                    name: "large",
                    params: vec![$large; $n],
                },
            ]
        }
    };
}

// ---------------------------------------------------------------- gemm --

/// `gemm`: C = alpha·A·B + beta·C.
pub fn gemm() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("gemm", &["NI", "NJ", "NK"], &[8, 8, 8]);
        let c = b.array("C", &["NI", "NJ"]);
        let aa = b.array("A", &["NI", "NK"]);
        let bb = b.array("B", &["NK", "NJ"]);
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        let scale = Expr::mul(b.rd(c, &[ix("i"), ix("j")]), a(BETA));
        b.stmt("S1", c, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NK"));
        let prod = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S2", c, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj, nk) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (c, rest) = arr.split_at_mut(1);
        let c = &mut c[0];
        let (aa, bb) = (&rest[0], &rest[1]);
        for i in 0..ni {
            for j in 0..nj {
                c[i * nj + j] *= BETA;
                for k in 0..nk {
                    c[i * nj + j] += ALPHA * aa[i * nk + k] * bb[k * nj + j];
                }
            }
        }
    }
    Kernel {
        name: "gemm",
        description: "Matrix-multiply C=alpha.A.B+beta.C",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * p[1] * (1 + 3 * p[2])) as u64,
        datasets: datasets!(12, 64, 512, 1024, 3),
        init: InitSpec::generic(),
    }
}

// ----------------------------------------------------------------- 2mm --

/// `2mm`: tmp = alpha·A·B; D = tmp·C + beta·D.
pub fn two_mm() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("2mm", &["NI", "NJ", "NK", "NL"], &[8, 8, 8, 8]);
        let tmp = b.array("tmp", &["NI", "NJ"]);
        let aa = b.array("A", &["NI", "NK"]);
        let bb = b.array("B", &["NK", "NJ"]);
        let cc = b.array("C", &["NJ", "NL"]);
        let dd = b.array("D", &["NI", "NL"]);
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        b.stmt("R", tmp, &[ix("i"), ix("j")], a(0.0));
        b.enter("k", con(0), par("NK"));
        let prod = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S", tmp, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NL"));
        let scale = Expr::mul(b.rd(dd, &[ix("i"), ix("j")]), a(BETA));
        b.stmt("T", dd, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NJ"));
        let prod = Expr::mul(b.rd(tmp, &[ix("i"), ix("k")]), b.rd(cc, &[ix("k"), ix("j")]));
        b.stmt_update("U", dd, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj, nk, nl) = (p[0] as usize, p[1] as usize, p[2] as usize, p[3] as usize);
        let (tmp, rest) = arr.split_at_mut(1);
        let tmp = &mut tmp[0];
        let (mid, dd) = rest.split_at_mut(3);
        let (aa, bb, cc) = (&mid[0], &mid[1], &mid[2]);
        let dd = &mut dd[0];
        for i in 0..ni {
            for j in 0..nj {
                tmp[i * nj + j] = 0.0;
                for k in 0..nk {
                    tmp[i * nj + j] += ALPHA * aa[i * nk + k] * bb[k * nj + j];
                }
            }
        }
        for i in 0..ni {
            for j in 0..nl {
                dd[i * nl + j] *= BETA;
                for k in 0..nj {
                    dd[i * nl + j] += tmp[i * nj + k] * cc[k * nl + j];
                }
            }
        }
    }
    Kernel {
        name: "2mm",
        description: "2 Matrix Multiplications (D=A.B; E=C.D)",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * p[1] * 3 * p[2] + p[0] * p[3] * (1 + 2 * p[1])) as u64,
        datasets: datasets!(12, 64, 512, 1024, 4),
        init: InitSpec::generic(),
    }
}

// ----------------------------------------------------------------- 3mm --

/// `3mm`: E = A·B; F = C·D; G = E·F.
pub fn three_mm() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("3mm", &["NI", "NJ", "NK", "NL", "NM"], &[8, 8, 8, 8, 8]);
        let e = b.array("E", &["NI", "NJ"]);
        let aa = b.array("A", &["NI", "NK"]);
        let bb = b.array("B", &["NK", "NJ"]);
        let f = b.array("F", &["NJ", "NL"]);
        let cc = b.array("C", &["NJ", "NM"]);
        let dd = b.array("D", &["NM", "NL"]);
        let g = b.array("G", &["NI", "NL"]);

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        b.stmt("E0", e, &[ix("i"), ix("j")], a(0.0));
        b.enter("k", con(0), par("NK"));
        let prod = Expr::mul(b.rd(aa, &[ix("i"), ix("k")]), b.rd(bb, &[ix("k"), ix("j")]));
        b.stmt_update("E1", e, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();

        b.enter("i", con(0), par("NJ"));
        b.enter("j", con(0), par("NL"));
        b.stmt("F0", f, &[ix("i"), ix("j")], a(0.0));
        b.enter("k", con(0), par("NM"));
        let prod = Expr::mul(b.rd(cc, &[ix("i"), ix("k")]), b.rd(dd, &[ix("k"), ix("j")]));
        b.stmt_update("F1", f, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();

        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NL"));
        b.stmt("G0", g, &[ix("i"), ix("j")], a(0.0));
        b.enter("k", con(0), par("NJ"));
        let prod = Expr::mul(b.rd(e, &[ix("i"), ix("k")]), b.rd(f, &[ix("k"), ix("j")]));
        b.stmt_update("G1", g, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj, nk, nl, nm) = (
            p[0] as usize,
            p[1] as usize,
            p[2] as usize,
            p[3] as usize,
            p[4] as usize,
        );
        // arrays: E A B F C D G
        let (e, rest) = arr.split_at_mut(1);
        let e = &mut e[0];
        let (ab, rest) = rest.split_at_mut(2);
        let (f, rest2) = rest.split_at_mut(1);
        let f = &mut f[0];
        let (cd, g) = rest2.split_at_mut(2);
        let g = &mut g[0];
        for i in 0..ni {
            for j in 0..nj {
                e[i * nj + j] = 0.0;
                for k in 0..nk {
                    e[i * nj + j] += ab[0][i * nk + k] * ab[1][k * nj + j];
                }
            }
        }
        for i in 0..nj {
            for j in 0..nl {
                f[i * nl + j] = 0.0;
                for k in 0..nm {
                    f[i * nl + j] += cd[0][i * nm + k] * cd[1][k * nl + j];
                }
            }
        }
        for i in 0..ni {
            for j in 0..nl {
                g[i * nl + j] = 0.0;
                for k in 0..nj {
                    g[i * nl + j] += e[i * nj + k] * f[k * nl + j];
                }
            }
        }
    }
    Kernel {
        name: "3mm",
        description: "3 Matrix Multiplications (E=A.B; F=C.D; G=E.F)",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (2 * (p[0] * p[1] * p[2] + p[1] * p[3] * p[4] + p[0] * p[3] * p[1])) as u64,
        datasets: datasets!(10, 64, 512, 1024, 5),
        init: InitSpec::generic(),
    }
}

// ---------------------------------------------------------------- syrk --

/// `syrk`: C = alpha·A·Aᵀ + beta·C (symmetric rank-k update).
pub fn syrk() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("syrk", &["NI", "NJ"], &[8, 8]);
        let c = b.array("C", &["NI", "NI"]);
        let aa = b.array("A", &["NI", "NJ"]);
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NI"));
        let scale = Expr::mul(b.rd(c, &[ix("i"), ix("j")]), a(BETA));
        b.stmt("S1", c, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NJ"));
        let prod = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("k")])),
            b.rd(aa, &[ix("j"), ix("k")]),
        );
        b.stmt_update("S2", c, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj) = (p[0] as usize, p[1] as usize);
        let (c, aa) = arr.split_at_mut(1);
        let c = &mut c[0];
        let aa = &aa[0];
        for i in 0..ni {
            for j in 0..ni {
                c[i * ni + j] *= BETA;
                for k in 0..nj {
                    c[i * ni + j] += ALPHA * aa[i * nj + k] * aa[j * nj + k];
                }
            }
        }
    }
    Kernel {
        name: "syrk",
        description: "Symmetric rank-k operations",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * p[0] * (1 + 3 * p[1])) as u64,
        datasets: datasets!(12, 64, 512, 1024, 2),
        init: InitSpec::generic(),
    }
}

// --------------------------------------------------------------- syr2k --

/// `syr2k`: C = alpha·A·Bᵀ + alpha·B·Aᵀ + beta·C.
pub fn syr2k() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("syr2k", &["NI", "NJ"], &[8, 8]);
        let c = b.array("C", &["NI", "NI"]);
        let aa = b.array("A", &["NI", "NJ"]);
        let bb = b.array("B", &["NI", "NJ"]);
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NI"));
        let scale = Expr::mul(b.rd(c, &[ix("i"), ix("j")]), a(BETA));
        b.stmt("S1", c, &[ix("i"), ix("j")], scale);
        b.enter("k", con(0), par("NJ"));
        let p1 = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("j"), ix("k")]),
        );
        let p2 = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(bb, &[ix("i"), ix("k")])),
            b.rd(aa, &[ix("j"), ix("k")]),
        );
        b.stmt_update("S2", c, &[ix("i"), ix("j")], BinOp::Add, Expr::add(p1, p2));
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj) = (p[0] as usize, p[1] as usize);
        let (c, rest) = arr.split_at_mut(1);
        let c = &mut c[0];
        let (aa, bb) = (&rest[0], &rest[1]);
        for i in 0..ni {
            for j in 0..ni {
                c[i * ni + j] *= BETA;
                for k in 0..nj {
                    c[i * ni + j] += ALPHA * aa[i * nj + k] * bb[j * nj + k]
                        + ALPHA * bb[i * nj + k] * aa[j * nj + k];
                }
            }
        }
    }
    Kernel {
        name: "syr2k",
        description: "Symmetric rank-2k operations",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * p[0] * (1 + 7 * p[1])) as u64,
        datasets: datasets!(12, 64, 512, 1024, 2),
        init: InitSpec::generic(),
    }
}

// ---------------------------------------------------------------- symm --

/// `symm`: symmetric matrix-multiply with a triangular accumulation
/// (original C's scalar `acc` expanded to `acc[i][j]`).
pub fn symm() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("symm", &["NI", "NJ"], &[8, 8]);
        let c = b.array("C", &["NI", "NJ"]);
        let aa = b.array("A", &["NI", "NI"]);
        let bb = b.array("B", &["NI", "NJ"]);
        let acc = b.array("acc", &["NI", "NJ"]);
        b.enter("i", con(0), par("NI"));
        b.enter("j", con(0), par("NJ"));
        b.stmt("S0", acc, &[ix("i"), ix("j")], a(0.0));
        b.enter("k", con(0), ix("i"));
        let p1 = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("k"), ix("i")])),
            b.rd(bb, &[ix("i"), ix("j")]),
        );
        b.stmt_update("S1", c, &[ix("k"), ix("j")], BinOp::Add, p1);
        let p2 = Expr::mul(b.rd(bb, &[ix("k"), ix("j")]), b.rd(aa, &[ix("k"), ix("i")]));
        b.stmt_update("S2", acc, &[ix("i"), ix("j")], BinOp::Add, p2);
        b.exit();
        let fin = Expr::add(
            Expr::add(
                Expr::mul(a(BETA), b.rd(c, &[ix("i"), ix("j")])),
                Expr::mul(
                    Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("i")])),
                    b.rd(bb, &[ix("i"), ix("j")]),
                ),
            ),
            Expr::mul(a(ALPHA), b.rd(acc, &[ix("i"), ix("j")])),
        );
        b.stmt("S3", c, &[ix("i"), ix("j")], fin);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (ni, nj) = (p[0] as usize, p[1] as usize);
        let (c, rest) = arr.split_at_mut(1);
        let c = &mut c[0];
        let (ab, acc) = rest.split_at_mut(2);
        let (aa, bb) = (&ab[0], &ab[1]);
        let acc = &mut acc[0];
        for i in 0..ni {
            for j in 0..nj {
                acc[i * nj + j] = 0.0;
                for k in 0..i {
                    c[k * nj + j] += ALPHA * aa[k * ni + i] * bb[i * nj + j];
                    acc[i * nj + j] += bb[k * nj + j] * aa[k * ni + i];
                }
                c[i * nj + j] = BETA * c[i * nj + j]
                    + ALPHA * aa[i * ni + i] * bb[i * nj + j]
                    + ALPHA * acc[i * nj + j];
            }
        }
    }
    Kernel {
        name: "symm",
        description: "Symmetric matrix-multiply",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[0] * p[1] * 5 + p[0] * p[0] / 2 * p[1] * 5) as u64,
        datasets: datasets!(12, 64, 384, 768, 2),
        init: InitSpec::generic(),
    }
}

// ------------------------------------------------------------- doitgen --

/// `doitgen`: multiresolution analysis kernel (MADNESS).
pub fn doitgen() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("doitgen", &["NR", "NQ", "NP"], &[6, 6, 6]);
        let aa = b.array("A", &["NR", "NQ", "NP"]);
        let c4 = b.array("C4", &["NP", "NP"]);
        let sum = b.array("sum", &["NR", "NQ", "NP"]);
        b.enter("r", con(0), par("NR"));
        b.enter("q", con(0), par("NQ"));
        b.enter("p", con(0), par("NP"));
        b.stmt("S0", sum, &[ix("r"), ix("q"), ix("p")], a(0.0));
        b.enter("s", con(0), par("NP"));
        let prod = Expr::mul(
            b.rd(aa, &[ix("r"), ix("q"), ix("s")]),
            b.rd(c4, &[ix("s"), ix("p")]),
        );
        b.stmt_update("S1", sum, &[ix("r"), ix("q"), ix("p")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.enter("p", con(0), par("NP"));
        let cp = b.rd(sum, &[ix("r"), ix("q"), ix("p")]);
        b.stmt("S2", aa, &[ix("r"), ix("q"), ix("p")], cp);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (nr, nq, np) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &mut aa[0];
        let (c4, sum) = rest.split_at_mut(1);
        let (c4, sum) = (&c4[0], &mut sum[0]);
        for r in 0..nr {
            for q in 0..nq {
                for pp in 0..np {
                    sum[(r * nq + q) * np + pp] = 0.0;
                    for s in 0..np {
                        sum[(r * nq + q) * np + pp] +=
                            aa[(r * nq + q) * np + s] * c4[s * np + pp];
                    }
                }
                for pp in 0..np {
                    aa[(r * nq + q) * np + pp] = sum[(r * nq + q) * np + pp];
                }
            }
        }
    }
    Kernel {
        name: "doitgen",
        description: "Multiresolution analysis kernel (MADNESS)",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (2 * p[0] * p[1] * p[2] * p[2]) as u64,
        datasets: datasets!(6, 24, 96, 128, 3),
        init: InitSpec::generic(),
    }
}

// ------------------------------------------------------------- gesummv --

/// `gesummv`: y = alpha·A·x + beta·B·x.
pub fn gesummv() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("gesummv", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let bb = b.array("B", &["N", "N"]);
        let tmp = b.array("tmp", &["N"]);
        let x = b.array("x", &["N"]);
        let y = b.array("y", &["N"]);
        b.enter("i", con(0), par("N"));
        b.stmt("S0", tmp, &[ix("i")], a(0.0));
        b.stmt("S1", y, &[ix("i")], a(0.0));
        b.enter("j", con(0), par("N"));
        let p1 = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(x, &[ix("j")]));
        b.stmt_update("S2", tmp, &[ix("i")], BinOp::Add, p1);
        let p2 = Expr::mul(b.rd(bb, &[ix("i"), ix("j")]), b.rd(x, &[ix("j")]));
        b.stmt_update("S3", y, &[ix("i")], BinOp::Add, p2);
        b.exit();
        let fin = Expr::add(
            Expr::mul(a(ALPHA), b.rd(tmp, &[ix("i")])),
            Expr::mul(a(BETA), b.rd(y, &[ix("i")])),
        );
        b.stmt("S4", y, &[ix("i")], fin);
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let (ab, rest) = arr.split_at_mut(2);
        let (aa, bb) = (&ab[0], &ab[1]);
        let (tmp, rest2) = rest.split_at_mut(1);
        let tmp = &mut tmp[0];
        let (x, y) = rest2.split_at_mut(1);
        let (x, y) = (&x[0], &mut y[0]);
        for i in 0..n {
            tmp[i] = 0.0;
            y[i] = 0.0;
            for j in 0..n {
                tmp[i] += aa[i * n + j] * x[j];
                y[i] += bb[i * n + j] * x[j];
            }
            y[i] = ALPHA * tmp[i] + BETA * y[i];
        }
    }
    Kernel {
        name: "gesummv",
        description: "Scalar, Vector and Matrix Multiplication",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * (4 * p[0] + 3)) as u64,
        datasets: datasets!(16, 128, 1024, 2048, 1),
        init: InitSpec::generic(),
    }
}

// -------------------------------------------------------------- gemver --

/// `gemver`: rank-2 update then two matrix-vector products.
pub fn gemver() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("gemver", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let u1 = b.array("u1", &["N"]);
        let v1 = b.array("v1", &["N"]);
        let u2 = b.array("u2", &["N"]);
        let v2 = b.array("v2", &["N"]);
        let x = b.array("x", &["N"]);
        let y = b.array("y", &["N"]);
        let z = b.array("z", &["N"]);
        let w = b.array("w", &["N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let upd = Expr::add(
            Expr::add(
                b.rd(aa, &[ix("i"), ix("j")]),
                Expr::mul(b.rd(u1, &[ix("i")]), b.rd(v1, &[ix("j")])),
            ),
            Expr::mul(b.rd(u2, &[ix("i")]), b.rd(v2, &[ix("j")])),
        );
        b.stmt("S1", aa, &[ix("i"), ix("j")], upd);
        b.exit();
        b.exit();
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let p1 = Expr::mul(
            Expr::mul(a(BETA), b.rd(aa, &[ix("j"), ix("i")])),
            b.rd(y, &[ix("j")]),
        );
        b.stmt_update("S2", x, &[ix("i")], BinOp::Add, p1);
        b.exit();
        b.exit();
        b.enter("i", con(0), par("N"));
        let zz = b.rd(z, &[ix("i")]);
        b.stmt_update("S3", x, &[ix("i")], BinOp::Add, zz);
        b.exit();
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let p2 = Expr::mul(
            Expr::mul(a(ALPHA), b.rd(aa, &[ix("i"), ix("j")])),
            b.rd(x, &[ix("j")]),
        );
        b.stmt_update("S4", w, &[ix("i")], BinOp::Add, p2);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        // A u1 v1 u2 v2 x y z w
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &mut aa[0];
        let (uv, rest2) = rest.split_at_mut(4);
        let (x, rest3) = rest2.split_at_mut(1);
        let x = &mut x[0];
        let (yz, w) = rest3.split_at_mut(2);
        let w = &mut w[0];
        for i in 0..n {
            for j in 0..n {
                aa[i * n + j] += uv[0][i] * uv[1][j] + uv[2][i] * uv[3][j];
            }
        }
        for i in 0..n {
            for j in 0..n {
                x[i] += BETA * aa[j * n + i] * yz[0][j];
            }
        }
        for i in 0..n {
            x[i] += yz[1][i];
        }
        for i in 0..n {
            for j in 0..n {
                w[i] += ALPHA * aa[i * n + j] * x[j];
            }
        }
    }
    Kernel {
        name: "gemver",
        description: "Vector Multiplication and Matrix Addition",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[0] * p[0] * 10 + p[0]) as u64,
        datasets: datasets!(16, 128, 1024, 2048, 1),
        init: InitSpec::generic(),
    }
}

// ----------------------------------------------------------------- mvt --

/// `mvt`: x1 += A·y1; x2 += Aᵀ·y2.
pub fn mvt() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("mvt", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let x1 = b.array("x1", &["N"]);
        let x2 = b.array("x2", &["N"]);
        let y1 = b.array("y1", &["N"]);
        let y2 = b.array("y2", &["N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let p1 = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(y1, &[ix("j")]));
        b.stmt_update("S1", x1, &[ix("i")], BinOp::Add, p1);
        b.exit();
        b.exit();
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let p2 = Expr::mul(b.rd(aa, &[ix("j"), ix("i")]), b.rd(y2, &[ix("j")]));
        b.stmt_update("S2", x2, &[ix("i")], BinOp::Add, p2);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &aa[0];
        let (x12, y12) = rest.split_at_mut(2);
        for i in 0..n {
            for j in 0..n {
                x12[0][i] += aa[i * n + j] * y12[0][j];
            }
        }
        for i in 0..n {
            for j in 0..n {
                x12[1][i] += aa[j * n + i] * y12[1][j];
            }
        }
    }
    Kernel {
        name: "mvt",
        description: "Matrix Vector Product and Transpose",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (4 * p[0] * p[0]) as u64,
        datasets: datasets!(16, 128, 1024, 2048, 1),
        init: InitSpec::generic(),
    }
}

// ---------------------------------------------------------------- atax --

/// `atax`: y = Aᵀ·(A·x).
pub fn atax() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("atax", &["NX", "NY"], &[8, 8]);
        let aa = b.array("A", &["NX", "NY"]);
        let x = b.array("x", &["NY"]);
        let y = b.array("y", &["NY"]);
        let tmp = b.array("tmp", &["NX"]);
        b.enter("i", con(0), par("NY"));
        b.stmt("S0", y, &[ix("i")], a(0.0));
        b.exit();
        b.enter("i", con(0), par("NX"));
        b.stmt("S1", tmp, &[ix("i")], a(0.0));
        b.enter("j", con(0), par("NY"));
        let p1 = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(x, &[ix("j")]));
        b.stmt_update("S2", tmp, &[ix("i")], BinOp::Add, p1);
        b.exit();
        b.enter("j", con(0), par("NY"));
        let p2 = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(tmp, &[ix("i")]));
        b.stmt_update("S3", y, &[ix("j")], BinOp::Add, p2);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (nx, ny) = (p[0] as usize, p[1] as usize);
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &aa[0];
        let (x, rest2) = rest.split_at_mut(1);
        let x = &x[0];
        let (y, tmp) = rest2.split_at_mut(1);
        let (y, tmp) = (&mut y[0], &mut tmp[0]);
        for i in 0..ny {
            y[i] = 0.0;
        }
        for i in 0..nx {
            tmp[i] = 0.0;
            for j in 0..ny {
                tmp[i] += aa[i * ny + j] * x[j];
            }
            for j in 0..ny {
                y[j] += aa[i * ny + j] * tmp[i];
            }
        }
    }
    Kernel {
        name: "atax",
        description: "Matrix Transpose and Vector Multiplication",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (4 * p[0] * p[1]) as u64,
        datasets: datasets!(16, 128, 1024, 2048, 2),
        init: InitSpec::generic(),
    }
}

// ---------------------------------------------------------------- bicg --

/// `bicg`: s = Aᵀ·r; q = A·p (BiCGStab sub-kernel).
pub fn bicg() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("bicg", &["NX", "NY"], &[8, 8]);
        let aa = b.array("A", &["NX", "NY"]);
        let s = b.array("s", &["NY"]);
        let q = b.array("q", &["NX"]);
        let pp = b.array("p", &["NY"]);
        let r = b.array("r", &["NX"]);
        b.enter("i", con(0), par("NY"));
        b.stmt("S0", s, &[ix("i")], a(0.0));
        b.exit();
        b.enter("i", con(0), par("NX"));
        b.stmt("S1", q, &[ix("i")], a(0.0));
        b.enter("j", con(0), par("NY"));
        let p1 = Expr::mul(b.rd(r, &[ix("i")]), b.rd(aa, &[ix("i"), ix("j")]));
        b.stmt_update("S2", s, &[ix("j")], BinOp::Add, p1);
        let p2 = Expr::mul(b.rd(aa, &[ix("i"), ix("j")]), b.rd(pp, &[ix("j")]));
        b.stmt_update("S3", q, &[ix("i")], BinOp::Add, p2);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (nx, ny) = (p[0] as usize, p[1] as usize);
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &aa[0];
        let (sq, pr) = rest.split_at_mut(2);
        for i in 0..ny {
            sq[0][i] = 0.0;
        }
        for i in 0..nx {
            sq[1][i] = 0.0;
            for j in 0..ny {
                sq[0][j] += pr[1][i] * aa[i * ny + j];
                sq[1][i] += aa[i * ny + j] * pr[0][j];
            }
        }
    }
    Kernel {
        name: "bicg",
        description: "BiCG Sub Kernel of BiCGStab Linear Solver",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (4 * p[0] * p[1]) as u64,
        datasets: datasets!(16, 128, 1024, 2048, 2),
        init: InitSpec::generic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blas_kernels_build() {
        for k in [
            gemm(),
            two_mm(),
            three_mm(),
            syrk(),
            syr2k(),
            symm(),
            doitgen(),
            gesummv(),
            gemver(),
            mvt(),
            atax(),
            bicg(),
        ] {
            let scop = (k.build)();
            assert!(!scop.statements.is_empty(), "{}", k.name);
            assert!((k.flops)(&k.dataset("mini").params) > 0, "{}", k.name);
            assert_eq!((k.datasets)().len(), 4);
        }
    }

    #[test]
    fn gemm_reference_spot_check() {
        let k = gemm();
        let scop = (k.build)();
        let params = vec![3, 3, 3];
        let mut arrays = k.fresh_arrays(&scop, &params);
        let c0 = arrays[0][0];
        let expect: f64 =
            BETA * c0 + (0..3).map(|kk| ALPHA * arrays[1][kk] * arrays[2][kk * 3]).sum::<f64>();
        (k.reference)(&params, &mut arrays);
        assert!((arrays[0][0] - expect).abs() < 1e-12);
    }

    #[test]
    fn references_produce_finite_values() {
        for k in [
            gemm(),
            two_mm(),
            three_mm(),
            syrk(),
            syr2k(),
            symm(),
            doitgen(),
            gesummv(),
            gemver(),
            mvt(),
            atax(),
            bicg(),
        ] {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut arrays = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut arrays);
            for (ai, arr) in arrays.iter().enumerate() {
                assert!(
                    arr.iter().all(|x| x.is_finite()),
                    "{} array {ai} has non-finite values",
                    k.name
                );
            }
        }
    }
}
