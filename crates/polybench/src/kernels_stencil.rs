//! Time-iterated stencil kernels: `jacobi-1d-imper`, `jacobi-2d-imper`,
//! `seidel-2d`, `fdtd-2d`, and `fdtd-apml`.
//!
//! These are the paper's pipeline-parallel group (Fig. 9): their
//! loop-carried dependences across the time dimension make doall
//! parallelization impossible without skewing, which is exactly where the
//! point-to-point pipeline construct pays off.
//!
//! `fdtd-apml`'s scalar temporaries (`clf`, `tmp`) are expanded into
//! arrays, as with the other scalar expansions in this crate.

use crate::kernel::{Dataset, Group, InitSpec, Kernel};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{Expr, Scop};

fn a(v: f64) -> Expr {
    Expr::Const(v)
}

// ------------------------------------------------------ jacobi-1d-imper --

/// `jacobi-1d-imper`: 1-D three-point Jacobi with explicit copy-back.
pub fn jacobi_1d() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("jacobi-1d-imper", &["TSTEPS", "N"], &[4, 12]);
        b.assume_params_at_least(3);
        let aa = b.array("A", &["N"]);
        let bb = b.array("B", &["N"]);
        b.enter("t", con(0), par("TSTEPS"));
        b.enter("i", con(1), par("N") - con(1));
        let avg = Expr::div(
            Expr::add(
                Expr::add(b.rd(aa, &[ix("i") - con(1)]), b.rd(aa, &[ix("i")])),
                b.rd(aa, &[ix("i") + con(1)]),
            ),
            a(3.0),
        );
        b.stmt("S0", bb, &[ix("i")], avg);
        b.exit();
        b.enter("i", con(1), par("N") - con(1));
        let cp = b.rd(bb, &[ix("i")]);
        b.stmt("S1", aa, &[ix("i")], cp);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (t, n) = (p[0] as usize, p[1] as usize);
        let (aa, bb) = arr.split_at_mut(1);
        let (aa, bb) = (&mut aa[0], &mut bb[0]);
        for _ in 0..t {
            for i in 1..n - 1 {
                bb[i] = (aa[i - 1] + aa[i] + aa[i + 1]) / 3.0;
            }
            for i in 1..n - 1 {
                aa[i] = bb[i];
            }
        }
    }
    Kernel {
        name: "jacobi-1d-imper",
        description: "1-D Jacobi stencil computation",
        group: Group::Pipeline,
        build,
        reference,
        flops: |p| (p[0] * 3 * (p[1] - 2).max(0)) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![4, 20] },
                Dataset { name: "small", params: vec![20, 1000] },
                Dataset { name: "standard", params: vec![100, 100000] },
                Dataset { name: "large", params: vec![1000, 100000] },
            ]
        },
        init: InitSpec::generic(),
    }
}

// ------------------------------------------------------ jacobi-2d-imper --

/// `jacobi-2d-imper`: 2-D five-point Jacobi with explicit copy-back.
pub fn jacobi_2d() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("jacobi-2d-imper", &["TSTEPS", "N"], &[3, 10]);
        b.assume_params_at_least(3);
        let aa = b.array("A", &["N", "N"]);
        let bb = b.array("B", &["N", "N"]);
        b.enter("t", con(0), par("TSTEPS"));
        b.enter("i", con(1), par("N") - con(1));
        b.enter("j", con(1), par("N") - con(1));
        let sum = Expr::add(
            Expr::add(
                Expr::add(
                    Expr::add(
                        b.rd(aa, &[ix("i"), ix("j")]),
                        b.rd(aa, &[ix("i"), ix("j") - con(1)]),
                    ),
                    b.rd(aa, &[ix("i"), ix("j") + con(1)]),
                ),
                b.rd(aa, &[ix("i") + con(1), ix("j")]),
            ),
            b.rd(aa, &[ix("i") - con(1), ix("j")]),
        );
        b.stmt("S0", bb, &[ix("i"), ix("j")], Expr::mul(a(0.2), sum));
        b.exit();
        b.exit();
        b.enter("i", con(1), par("N") - con(1));
        b.enter("j", con(1), par("N") - con(1));
        let cp = b.rd(bb, &[ix("i"), ix("j")]);
        b.stmt("S1", aa, &[ix("i"), ix("j")], cp);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (t, n) = (p[0] as usize, p[1] as usize);
        let (aa, bb) = arr.split_at_mut(1);
        let (aa, bb) = (&mut aa[0], &mut bb[0]);
        for _ in 0..t {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    bb[i * n + j] = 0.2
                        * (aa[i * n + j]
                            + aa[i * n + j - 1]
                            + aa[i * n + j + 1]
                            + aa[(i + 1) * n + j]
                            + aa[(i - 1) * n + j]);
                }
            }
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    aa[i * n + j] = bb[i * n + j];
                }
            }
        }
    }
    Kernel {
        name: "jacobi-2d-imper",
        description: "2-D Jacobi stencil computation",
        group: Group::Pipeline,
        build,
        reference,
        flops: |p| {
            let inner = (p[1] - 2).max(0);
            (p[0] * 5 * inner * inner) as u64
        },
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![3, 12] },
                Dataset { name: "small", params: vec![10, 128] },
                Dataset { name: "standard", params: vec![20, 1000] },
                Dataset { name: "large", params: vec![50, 2000] },
            ]
        },
        init: InitSpec::generic(),
    }
}

// ----------------------------------------------------------- seidel-2d --

/// `seidel-2d`: in-place 9-point Gauss–Seidel sweep.
pub fn seidel_2d() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("seidel-2d", &["TSTEPS", "N"], &[3, 10]);
        b.assume_params_at_least(3);
        let aa = b.array("A", &["N", "N"]);
        b.enter("t", con(0), par("TSTEPS"));
        b.enter("i", con(1), par("N") - con(1));
        b.enter("j", con(1), par("N") - con(1));
        // Left-associated exactly as the C source:
        // A[i-1][j-1] + A[i-1][j] + … + A[i+1][j+1].
        let cells: Vec<(i64, i64)> = vec![
            (-1, -1),
            (-1, 0),
            (-1, 1),
            (0, -1),
            (0, 0),
            (0, 1),
            (1, -1),
            (1, 0),
            (1, 1),
        ];
        let mut sum = b.rd(aa, &[ix("i") + con(cells[0].0), ix("j") + con(cells[0].1)]);
        for &(di, dj) in &cells[1..] {
            sum = Expr::add(sum, b.rd(aa, &[ix("i") + con(di), ix("j") + con(dj)]));
        }
        b.stmt(
            "S0",
            aa,
            &[ix("i"), ix("j")],
            Expr::div(sum, a(9.0)),
        );
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (t, n) = (p[0] as usize, p[1] as usize);
        let aa = &mut arr[0];
        for _ in 0..t {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    aa[i * n + j] = (aa[(i - 1) * n + j - 1]
                        + aa[(i - 1) * n + j]
                        + aa[(i - 1) * n + j + 1]
                        + aa[i * n + j - 1]
                        + aa[i * n + j]
                        + aa[i * n + j + 1]
                        + aa[(i + 1) * n + j - 1]
                        + aa[(i + 1) * n + j]
                        + aa[(i + 1) * n + j + 1])
                        / 9.0;
                }
            }
        }
    }
    Kernel {
        name: "seidel-2d",
        description: "2-D Seidel stencil computation",
        group: Group::Pipeline,
        build,
        reference,
        flops: |p| {
            let inner = (p[1] - 2).max(0);
            (p[0] * 9 * inner * inner) as u64
        },
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![3, 12] },
                Dataset { name: "small", params: vec![10, 128] },
                Dataset { name: "standard", params: vec![20, 1000] },
                Dataset { name: "large", params: vec![50, 2000] },
            ]
        },
        init: InitSpec::generic(),
    }
}

// ------------------------------------------------------------- fdtd-2d --

/// `fdtd-2d`: 2-D finite-difference time-domain kernel.
pub fn fdtd_2d() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("fdtd-2d", &["TSTEPS", "NX", "NY"], &[3, 8, 8]);
        b.assume_params_at_least(2);
        let ex = b.array("ex", &["NX", "NY"]);
        let ey = b.array("ey", &["NX", "NY"]);
        let hz = b.array("hz", &["NX", "NY"]);
        let fict = b.array("fict", &["TSTEPS"]);
        b.enter("t", con(0), par("TSTEPS"));
        // The boundary statement is sunk into a unit i-loop so every
        // statement of the nest is 3-deep (uniform dependence vectors —
        // the usual normalization polyhedral tools apply here).
        b.enter("i", con(0), con(1));
        b.enter("j", con(0), par("NY"));
        let f = b.rd(fict, &[ix("t")]);
        b.stmt("S0", ey, &[ix("i"), ix("j")], f);
        b.exit();
        b.exit();
        b.enter("i", con(1), par("NX"));
        b.enter("j", con(0), par("NY"));
        let e = Expr::sub(
            b.rd(ey, &[ix("i"), ix("j")]),
            Expr::mul(
                a(0.5),
                Expr::sub(
                    b.rd(hz, &[ix("i"), ix("j")]),
                    b.rd(hz, &[ix("i") - con(1), ix("j")]),
                ),
            ),
        );
        b.stmt("S1", ey, &[ix("i"), ix("j")], e);
        b.exit();
        b.exit();
        b.enter("i", con(0), par("NX"));
        b.enter("j", con(1), par("NY"));
        let e = Expr::sub(
            b.rd(ex, &[ix("i"), ix("j")]),
            Expr::mul(
                a(0.5),
                Expr::sub(
                    b.rd(hz, &[ix("i"), ix("j")]),
                    b.rd(hz, &[ix("i"), ix("j") - con(1)]),
                ),
            ),
        );
        b.stmt("S2", ex, &[ix("i"), ix("j")], e);
        b.exit();
        b.exit();
        b.enter("i", con(0), par("NX") - con(1));
        b.enter("j", con(0), par("NY") - con(1));
        let e = Expr::sub(
            b.rd(hz, &[ix("i"), ix("j")]),
            Expr::mul(
                a(0.7),
                // Left-associated exactly as the C source:
                // ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]
                Expr::sub(
                    Expr::add(
                        Expr::sub(
                            b.rd(ex, &[ix("i"), ix("j") + con(1)]),
                            b.rd(ex, &[ix("i"), ix("j")]),
                        ),
                        b.rd(ey, &[ix("i") + con(1), ix("j")]),
                    ),
                    b.rd(ey, &[ix("i"), ix("j")]),
                ),
            ),
        );
        b.stmt("S3", hz, &[ix("i"), ix("j")], e);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (t, nx, ny) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (ex, rest) = arr.split_at_mut(1);
        let ex = &mut ex[0];
        let (ey, rest2) = rest.split_at_mut(1);
        let ey = &mut ey[0];
        let (hz, fict) = rest2.split_at_mut(1);
        let (hz, fict) = (&mut hz[0], &fict[0]);
        for tt in 0..t {
            for j in 0..ny {
                ey[j] = fict[tt];
            }
            for i in 1..nx {
                for j in 0..ny {
                    ey[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[(i - 1) * ny + j]);
                }
            }
            for i in 0..nx {
                for j in 1..ny {
                    ex[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[i * ny + j - 1]);
                }
            }
            for i in 0..nx - 1 {
                for j in 0..ny - 1 {
                    hz[i * ny + j] -= 0.7
                        * (ex[i * ny + j + 1] - ex[i * ny + j] + ey[(i + 1) * ny + j]
                            - ey[i * ny + j]);
                }
            }
        }
    }
    Kernel {
        name: "fdtd-2d",
        description: "2-D Finite Different Time Domain Kernel",
        group: Group::Pipeline,
        build,
        reference,
        flops: |p| (p[0] * (11 * p[1] * p[2])) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![3, 10, 12] },
                Dataset { name: "small", params: vec![10, 128, 128] },
                Dataset { name: "standard", params: vec![20, 1000, 1000] },
                Dataset { name: "large", params: vec![50, 2000, 2000] },
            ]
        },
        init: InitSpec::generic(),
    }
}

// ----------------------------------------------------------- fdtd-apml --

/// `fdtd-apml`: FDTD with an anisotropic perfectly matched layer.
/// Structure per PolyBench/C 3.2: a triple (`iz`, `iy`, `ix`) nest
/// updating `Bza`/`Hz` from `Ex`/`Ey` with per-axis coefficient vectors,
/// plus the `ix = NX` and `iy = NY` boundary updates. The scalar
/// temporaries `clf`/`tmp` are expanded to 2-D arrays.
pub fn fdtd_apml() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("fdtd-apml", &["NZ", "NY", "NX"], &[6, 6, 6]);
        b.assume_params_at_least(2);
        // Field arrays (extents +1 where PolyBench uses CZ+1 etc.).
        let exf = b.array_dims("Ex", vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)]);
        let eyf = b.array_dims("Ey", vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)]);
        let bza = b.array_dims("Bza", vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)]);
        let hz = b.array_dims("Hz", vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)]);
        let czm = b.array_dims("czm", vec![par("NZ") + con(1)]);
        let czp = b.array_dims("czp", vec![par("NZ") + con(1)]);
        let cxmh = b.array_dims("cxmh", vec![par("NX") + con(1)]);
        let cxph = b.array_dims("cxph", vec![par("NX") + con(1)]);
        let cymh = b.array_dims("cymh", vec![par("NY") + con(1)]);
        let cyph = b.array_dims("cyph", vec![par("NY") + con(1)]);
        let clf = b.array_dims(
            "clf",
            vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)],
        );
        let tmp = b.array_dims(
            "tmp",
            vec![par("NZ") + con(1), par("NY") + con(1), par("NX") + con(1)],
        );
        let mui = 1.0 / 1.2566e-6_f64;
        let ch = 0.5;
        b.enter("iz", con(0), par("NZ"));
        b.enter("iy", con(0), par("NY"));
        b.enter("ix", con(0), par("NX"));
        // clf = Ex[iz][iy][ix] - Ex[iz][iy+1][ix] + Ey[iz][iy][ix+1] - Ey[iz][iy][ix]
        let e = Expr::sub(
            Expr::add(
                Expr::sub(
                    b.rd(exf, &[ix("iz"), ix("iy"), ix("ix")]),
                    b.rd(exf, &[ix("iz"), ix("iy") + con(1), ix("ix")]),
                ),
                b.rd(eyf, &[ix("iz"), ix("iy"), ix("ix") + con(1)]),
            ),
            b.rd(eyf, &[ix("iz"), ix("iy"), ix("ix")]),
        );
        b.stmt("S0", clf, &[ix("iz"), ix("iy"), ix("ix")], e);
        // tmp = (cymh[iy]/cyph[iy])*Bza - (ch/cyph[iy])*clf
        let e = Expr::sub(
            Expr::mul(
                Expr::div(b.rd(cymh, &[ix("iy")]), b.rd(cyph, &[ix("iy")])),
                b.rd(bza, &[ix("iz"), ix("iy"), ix("ix")]),
            ),
            Expr::mul(
                Expr::div(a(ch), b.rd(cyph, &[ix("iy")])),
                b.rd(clf, &[ix("iz"), ix("iy"), ix("ix")]),
            ),
        );
        b.stmt("S1", tmp, &[ix("iz"), ix("iy"), ix("ix")], e);
        // Hz = (cxmh[ix]/cxph[ix])*Hz + (mui*czp[iz]/cxph[ix])*tmp
        //      - (mui*czm[iz]/cxph[ix])*Bza
        let e = Expr::sub(
            Expr::add(
                Expr::mul(
                    Expr::div(b.rd(cxmh, &[ix("ix")]), b.rd(cxph, &[ix("ix")])),
                    b.rd(hz, &[ix("iz"), ix("iy"), ix("ix")]),
                ),
                Expr::mul(
                    Expr::div(
                        Expr::mul(a(mui), b.rd(czp, &[ix("iz")])),
                        b.rd(cxph, &[ix("ix")]),
                    ),
                    b.rd(tmp, &[ix("iz"), ix("iy"), ix("ix")]),
                ),
            ),
            Expr::mul(
                Expr::div(
                    Expr::mul(a(mui), b.rd(czm, &[ix("iz")])),
                    b.rd(cxph, &[ix("ix")]),
                ),
                b.rd(bza, &[ix("iz"), ix("iy"), ix("ix")]),
            ),
        );
        b.stmt("S2", hz, &[ix("iz"), ix("iy"), ix("ix")], e);
        // Bza = clf
        let e = b.rd(clf, &[ix("iz"), ix("iy"), ix("ix")]);
        b.stmt("S3", bza, &[ix("iz"), ix("iy"), ix("ix")], e);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (nz, ny, nx) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (_zp1, yp1, xp1) = (nz + 1, ny + 1, nx + 1);
        let mui = 1.0 / 1.2566e-6_f64;
        let ch = 0.5;
        // Ex Ey Bza Hz czm czp cxmh cxph cymh cyph clf tmp
        let at3 = |v: &[f64], z: usize, y: usize, x: usize| v[(z * yp1 + y) * xp1 + x];
        for iz in 0..nz {
            for iy in 0..ny {
                for ixx in 0..nx {
                    let cell = (iz * yp1 + iy) * xp1 + ixx;
                    let clf_v = at3(&arr[0], iz, iy, ixx) - at3(&arr[0], iz, iy + 1, ixx)
                        + at3(&arr[1], iz, iy, ixx + 1)
                        - at3(&arr[1], iz, iy, ixx);
                    arr[10][cell] = clf_v;
                    let tmp_v = (arr[8][iy] / arr[9][iy]) * at3(&arr[2], iz, iy, ixx)
                        - (ch / arr[9][iy]) * arr[10][cell];
                    arr[11][cell] = tmp_v;
                    let hz_v = (arr[6][ixx] / arr[7][ixx]) * at3(&arr[3], iz, iy, ixx)
                        + (mui * arr[5][iz] / arr[7][ixx]) * arr[11][cell]
                        - (mui * arr[4][iz] / arr[7][ixx]) * at3(&arr[2], iz, iy, ixx);
                    arr[3][cell] = hz_v;
                    arr[2][cell] = arr[10][cell];
                }
            }
        }
    }
    Kernel {
        name: "fdtd-apml",
        description: "FDTD using Anisotropic Perfectly Matched Layer",
        group: Group::Doall,
        build,
        reference,
        flops: |p| (p[0] * p[1] * p[2] * 16) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![6, 6, 6] },
                Dataset { name: "small", params: vec![32, 32, 32] },
                Dataset { name: "standard", params: vec![128, 128, 128] },
                Dataset { name: "large", params: vec![192, 192, 192] },
            ]
        },
        init: InitSpec::generic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_kernels_build_and_run_finite() {
        for k in [jacobi_1d(), jacobi_2d(), seidel_2d(), fdtd_2d(), fdtd_apml()] {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut arrays = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut arrays);
            for (ai, arr) in arrays.iter().enumerate() {
                assert!(
                    arr.iter().all(|x| x.is_finite()),
                    "{} array {ai} non-finite",
                    k.name
                );
            }
        }
    }

    #[test]
    fn jacobi_1d_converges_towards_smoothness() {
        // Repeated averaging shrinks the discrete Laplacian's magnitude.
        let k = jacobi_1d();
        let scop = (k.build)();
        let params = vec![50, 40];
        let mut arrays = polymix_ast::interp::alloc_arrays(&scop, &params);
        // A deliberately rough (alternating) field; the generic init is
        // locally linear and would have a zero Laplacian.
        for (i, x) in arrays[0].iter_mut().enumerate() {
            *x = (i % 2) as f64;
        }
        let rough = |a: &[f64]| -> f64 {
            a.windows(3)
                .map(|w| (w[0] - 2.0 * w[1] + w[2]).abs())
                .sum()
        };
        let before = rough(&arrays[0]);
        (k.reference)(&params, &mut arrays);
        let after = rough(&arrays[0][1..39]);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn seidel_preserves_constant_fields() {
        let k = seidel_2d();
        let scop = (k.build)();
        let params = vec![3, 10];
        let mut arrays = polymix_ast::interp::alloc_arrays(&scop, &params);
        for x in arrays[0].iter_mut() {
            *x = 7.0;
        }
        (k.reference)(&params, &mut arrays);
        assert!(arrays[0].iter().all(|&x| (x - 7.0).abs() < 1e-12));
    }
}
