//! Extended suite: PolyBench kernels *beyond* the paper's Table II
//! (`lu`, `trmm`, `gramschmidt`). They are not part of the reproduced
//! figures, but their triangular, in-place and normalization-heavy
//! dependence patterns stress the optimizers in ways the Table II set
//! does not, so the equivalence tests include them.

use crate::kernel::{Dataset, Group, InitSpec, Kernel};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Scop};

fn a(v: f64) -> Expr {
    Expr::Const(v)
}

/// `lu`: in-place LU decomposition of a diagonally dominant matrix.
pub fn lu() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("lu", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        b.enter("k", con(0), par("N"));
        b.enter("j", ix("k") + con(1), par("N"));
        let div = Expr::div(
            b.rd(aa, &[ix("k"), ix("j")]),
            b.rd(aa, &[ix("k"), ix("k")]),
        );
        b.stmt("S0", aa, &[ix("k"), ix("j")], div);
        b.exit();
        b.enter("i", ix("k") + con(1), par("N"));
        b.enter("j", ix("k") + con(1), par("N"));
        let prod = Expr::mul(
            b.rd(aa, &[ix("i"), ix("k")]),
            b.rd(aa, &[ix("k"), ix("j")]),
        );
        b.stmt_update("S1", aa, &[ix("i"), ix("j")], BinOp::Sub, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let aa = &mut arr[0];
        for k in 0..n {
            for j in k + 1..n {
                aa[k * n + j] /= aa[k * n + k];
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    aa[i * n + j] -= aa[i * n + k] * aa[k * n + j];
                }
            }
        }
    }
    Kernel {
        name: "lu",
        description: "LU decomposition (extended suite)",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (2 * p[0] * p[0] * p[0] / 3) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![16] },
                Dataset { name: "small", params: vec![128] },
                Dataset { name: "standard", params: vec![512] },
                Dataset { name: "large", params: vec![1024] },
            ]
        },
        init: InitSpec::diag(&[0]),
    }
}

/// `trmm`: triangular matrix multiply `B += alpha·A·B` with `A` strictly
/// lower-triangular accesses (the PolyBench/C 3.2 shape).
pub fn trmm() -> Kernel {
    const ALPHA: f64 = 1.5;
    fn build() -> Scop {
        let mut b = ScopBuilder::new("trmm", &["N"], &[8]);
        let aa = b.array("A", &["N", "N"]);
        let bb = b.array("B", &["N", "N"]);
        b.enter("i", con(1), par("N"));
        b.enter("j", con(0), par("N"));
        b.enter("k", con(0), ix("i"));
        let prod = Expr::mul(
            Expr::mul(a(1.5), b.rd(aa, &[ix("i"), ix("k")])),
            b.rd(bb, &[ix("j"), ix("k")]),
        );
        b.stmt_update("S", bb, &[ix("i"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let n = p[0] as usize;
        let (aa, bb) = arr.split_at_mut(1);
        let (aa, bb) = (&aa[0], &mut bb[0]);
        for i in 1..n {
            for j in 0..n {
                for k in 0..i {
                    bb[i * n + j] += ALPHA * aa[i * n + k] * bb[j * n + k];
                }
            }
        }
    }
    Kernel {
        name: "trmm",
        description: "Triangular matrix multiply (extended suite)",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[0] * p[0] * p[0]) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![14] },
                Dataset { name: "small", params: vec![96] },
                Dataset { name: "standard", params: vec![384] },
                Dataset { name: "large", params: vec![768] },
            ]
        },
        init: InitSpec::generic(),
    }
}

/// `gramschmidt`: modified Gram–Schmidt QR factorization (scalar `nrm`
/// expanded to `nrm[k]`).
pub fn gramschmidt() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("gramschmidt", &["N", "M"], &[8, 6]);
        // A is N x M (N rows, M columns); factorize columns.
        let aa = b.array("A", &["N", "M"]);
        let r = b.array("R", &["M", "M"]);
        let q = b.array("Q", &["N", "M"]);
        let nrm = b.array("nrm", &["M"]);
        b.enter("k", con(0), par("M"));
        b.stmt("N0", nrm, &[ix("k")], a(0.0));
        b.enter("i", con(0), par("N"));
        let sq = Expr::mul(b.rd(aa, &[ix("i"), ix("k")]), b.rd(aa, &[ix("i"), ix("k")]));
        b.stmt_update("N1", nrm, &[ix("k")], BinOp::Add, sq);
        b.exit();
        let rt = Expr::sqrt(b.rd(nrm, &[ix("k")]));
        b.stmt("N2", r, &[ix("k"), ix("k")], rt);
        b.enter("i", con(0), par("N"));
        let div = Expr::div(b.rd(aa, &[ix("i"), ix("k")]), b.rd(r, &[ix("k"), ix("k")]));
        b.stmt("Q0", q, &[ix("i"), ix("k")], div);
        b.exit();
        b.enter("j", ix("k") + con(1), par("M"));
        b.stmt("R0", r, &[ix("k"), ix("j")], a(0.0));
        b.enter("i", con(0), par("N"));
        let prod = Expr::mul(b.rd(q, &[ix("i"), ix("k")]), b.rd(aa, &[ix("i"), ix("j")]));
        b.stmt_update("R1", r, &[ix("k"), ix("j")], BinOp::Add, prod);
        b.exit();
        b.enter("i", con(0), par("N"));
        let prod = Expr::mul(b.rd(q, &[ix("i"), ix("k")]), b.rd(r, &[ix("k"), ix("j")]));
        b.stmt_update("A0", aa, &[ix("i"), ix("j")], BinOp::Sub, prod);
        b.exit();
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (n, m) = (p[0] as usize, p[1] as usize);
        let (aa, rest) = arr.split_at_mut(1);
        let aa = &mut aa[0];
        let (r, rest2) = rest.split_at_mut(1);
        let r = &mut r[0];
        let (q, nrm) = rest2.split_at_mut(1);
        let (q, nrm) = (&mut q[0], &mut nrm[0]);
        for k in 0..m {
            nrm[k] = 0.0;
            for i in 0..n {
                nrm[k] += aa[i * m + k] * aa[i * m + k];
            }
            r[k * m + k] = nrm[k].sqrt();
            for i in 0..n {
                q[i * m + k] = aa[i * m + k] / r[k * m + k];
            }
            for j in k + 1..m {
                r[k * m + j] = 0.0;
                for i in 0..n {
                    r[k * m + j] += q[i * m + k] * aa[i * m + j];
                }
                for i in 0..n {
                    aa[i * m + j] -= q[i * m + k] * r[k * m + j];
                }
            }
        }
    }
    Kernel {
        name: "gramschmidt",
        description: "Gram-Schmidt QR decomposition (extended suite)",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| (p[1] * (2 * p[0] + 2) + p[1] * p[1] * 2 * p[0]) as u64,
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![10, 8] },
                Dataset { name: "small", params: vec![96, 96] },
                Dataset { name: "standard", params: vec![256, 256] },
                Dataset { name: "large", params: vec![512, 512] },
            ]
        },
        init: InitSpec::generic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_kernels_run_finite() {
        for k in [lu(), trmm(), gramschmidt()] {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut arrays = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut arrays);
            for (ai, arr) in arrays.iter().enumerate() {
                assert!(
                    arr.iter().all(|x| x.is_finite()),
                    "{} array {ai} non-finite",
                    k.name
                );
            }
        }
    }

    #[test]
    fn lu_factorization_reconstructs_matrix() {
        let k = lu();
        let scop = (k.build)();
        let params = vec![6i64];
        let mut arrays = k.fresh_arrays(&scop, &params);
        let orig = arrays[0].clone();
        (k.reference)(&params, &mut arrays);
        let n = 6usize;
        let f = &arrays[0];
        // This 3.2 formulation leaves, for i > k: A[i][k] = L[i][k]·U[k][k]
        // (the undivided multiplier column) and, for j > k:
        // A[k][j] = U[k][j]/U[k][k] (the scaled pivot row).
        let l = |i: usize, j: usize| {
            if i == j {
                1.0
            } else if j < i {
                f[i * n + j] / f[j * n + j]
            } else {
                0.0
            }
        };
        let u = |i: usize, j: usize| {
            if j > i { f[i * n + j] * f[i * n + i] } else if j == i { f[i * n + i] } else { 0.0 }
        };
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..n {
                    s += l(i, kk) * u(kk, j);
                }
                assert!(
                    (s - orig[i * n + j]).abs() < 1e-6 * orig[i * n + j].abs().max(1.0),
                    "LU[{i}][{j}] = {s} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }

    #[test]
    fn gramschmidt_produces_orthonormal_columns() {
        let k = gramschmidt();
        let scop = (k.build)();
        let params = vec![12i64, 6];
        let mut arrays = k.fresh_arrays(&scop, &params);
        // The generic init is affine in the flat index, making small
        // matrices rank-deficient (Gram–Schmidt needs full column rank):
        // overwrite A with a nonlinear full-rank pattern.
        for (idx, x) in arrays[0].iter_mut().enumerate() {
            let (i, j) = (idx / 6, idx % 6);
            *x = ((i * i * 5 + 3 * i * j + j * j * 7 + 11) % 23) as f64 / 23.0 + 0.1;
        }
        (k.reference)(&params, &mut arrays);
        let (n, m) = (12usize, 6usize);
        let q = &arrays[2];
        for c1 in 0..m {
            for c2 in 0..m {
                let dot: f64 = (0..n).map(|i| q[i * m + c1] * q[i * m + c2]).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-6,
                    "Q^T Q [{c1}][{c2}] = {dot}"
                );
            }
        }
    }
}
