//! The kernel abstraction: SCoP builder + reference + metadata.

use polymix_ir::Scop;

/// Which figure of the paper's evaluation the benchmark belongs to,
/// following the stated grouping rule ("divided … based on the major
/// source of parallelism").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// Fig. 7 — doall parallelism is dominant.
    Doall,
    /// Fig. 8 — memory-bound / reduction-heavy kernels.
    Reduction,
    /// Fig. 9 — pipeline parallelism (time-iterated stencils).
    Pipeline,
}

/// A named problem size.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `mini` / `small` / `standard` / `large`.
    pub name: &'static str,
    /// Parameter values, in the SCoP's parameter order.
    pub params: Vec<i64>,
}

/// Input initialization policy, implemented identically by the in-process
/// runner ([`Kernel::apply_init`]) and the emitted-Rust generator
/// ([`Kernel::init_rust`]).
///
/// Every element of every array starts at the generic value
/// `((k*7 + 13*array_index) % 1024 + 1) / 1024.0` — dense, nonzero,
/// deterministic — then the adjustments below are applied. They keep
/// numerically sensitive kernels (division pivots, `sqrt` arguments)
/// well-conditioned, the role PolyBench's own kernel-specific `init_array`
/// functions play.
#[derive(Clone, Debug, Default)]
pub struct InitSpec {
    /// Arrays whose main diagonal is boosted by the row extent
    /// (diagonal dominance for factorizations / triangular solves).
    pub diag_boost: Vec<usize>,
    /// Per-array multiplicative scaling applied after the generic fill.
    pub scale: Vec<(usize, f64)>,
    /// Per-array additive offset applied last.
    pub offset: Vec<(usize, f64)>,
}

impl InitSpec {
    /// The plain generic fill.
    pub fn generic() -> InitSpec {
        InitSpec::default()
    }

    /// Generic fill plus diagonal boosting of the listed arrays.
    pub fn diag(arrays: &[usize]) -> InitSpec {
        InitSpec {
            diag_boost: arrays.to_vec(),
            ..Default::default()
        }
    }
}

/// One PolyBench kernel. `Clone` (cheap: fn pointers + static strs +
/// the small [`InitSpec`]) so sweep jobs can own their kernel across
/// worker threads.
#[derive(Clone)]
pub struct Kernel {
    /// Benchmark name as in Table II (e.g. `"2mm"`).
    pub name: &'static str,
    /// Table II description.
    pub description: &'static str,
    /// Figure grouping.
    pub group: Group,
    /// Builds the SCoP.
    pub build: fn() -> Scop,
    /// Executes the original C semantics directly on the arrays
    /// (same array order as the SCoP's declarations).
    pub reference: fn(&[i64], &mut [Vec<f64>]),
    /// Total floating-point operations for the given parameters.
    pub flops: fn(&[i64]) -> u64,
    /// Problem sizes.
    pub datasets: fn() -> Vec<Dataset>,
    /// Input initialization policy.
    pub init: InitSpec,
}

impl Kernel {
    /// The dataset with the given name, or `None` when the kernel does
    /// not define it. CLI front-ends should use this to reject typos.
    pub fn try_dataset(&self, name: &str) -> Option<Dataset> {
        (self.datasets)().into_iter().find(|d| d.name == name)
    }

    /// The dataset with the given name; degrades to the smallest
    /// (first-listed) dataset when `name` is unknown, warning on
    /// stderr, so a bad `--dataset` cannot abort a sweep mid-run.
    pub fn dataset(&self, name: &str) -> Dataset {
        self.try_dataset(name).unwrap_or_else(|| {
            let fallback = (self.datasets)().into_iter().next().unwrap_or(Dataset {
                name: "mini",
                params: Vec::new(),
            });
            eprintln!(
                "kernel {} has no dataset {name}; falling back to {}",
                self.name, fallback.name
            );
            fallback
        })
    }

    /// Allocates and initializes arrays per the init policy.
    pub fn fresh_arrays(&self, scop: &Scop, params: &[i64]) -> Vec<Vec<f64>> {
        let mut arrays = polymix_ast::interp::alloc_arrays(scop, params);
        self.apply_init(scop, params, &mut arrays);
        arrays
    }

    /// Applies the init policy to existing storage.
    pub fn apply_init(&self, scop: &Scop, params: &[i64], arrays: &mut [Vec<f64>]) {
        for (ai, arr) in arrays.iter_mut().enumerate() {
            for (k, x) in arr.iter_mut().enumerate() {
                *x = generic_value(ai, k);
            }
        }
        for &(ai, f) in &self.init.scale {
            for x in arrays[ai].iter_mut() {
                *x *= f;
            }
        }
        for &ai in &self.init.diag_boost {
            let ext = scop.arrays[ai].extents(params);
            assert_eq!(ext.len(), 2, "diag_boost needs a 2-D array");
            let (n, m) = (ext[0], ext[1]);
            let d = n.min(m);
            for i in 0..d {
                arrays[ai][(i * m + i) as usize] += n as f64;
            }
        }
        for &(ai, off) in &self.init.offset {
            for x in arrays[ai].iter_mut() {
                *x += off;
            }
        }
    }

    /// The same initialization as Rust source for emitted programs.
    /// Arrays are in scope as `a_<lowercase name>` vectors.
    pub fn init_rust(&self, scop: &Scop) -> String {
        let mut out = String::new();
        for (ai, arr) in scop.arrays.iter().enumerate() {
            let n = format!("a_{}", sanitize(&arr.name));
            out.push_str(&format!(
                "for k in 0..{n}.len() {{ {n}[k] = (((k as i64) * 7 + 13 * {ai}) % 1024 + 1) as f64 / 1024.0; }}\n"
            ));
        }
        for &(ai, f) in &self.init.scale {
            let n = format!("a_{}", sanitize(&scop.arrays[ai].name));
            out.push_str(&format!("for x in {n}.iter_mut() {{ *x *= {f:?}; }}\n"));
        }
        for &ai in &self.init.diag_boost {
            let arr = &scop.arrays[ai];
            let n = format!("a_{}", sanitize(&arr.name));
            let rows = extent_rust(scop, &arr.dims[0]);
            let cols = extent_rust(scop, &arr.dims[1]);
            out.push_str(&format!(
                "{{ let rows = {rows}; let cols = {cols}; let d = rows.min(cols); for i in 0..d {{ {n}[(i * cols + i) as usize] += rows as f64; }} }}\n"
            ));
        }
        for &(ai, off) in &self.init.offset {
            let n = format!("a_{}", sanitize(&scop.arrays[ai].name));
            out.push_str(&format!("for x in {n}.iter_mut() {{ *x += {off:?}; }}\n"));
        }
        out
    }
}

/// The generic init value for element `k` of array `ai`.
pub fn generic_value(ai: usize, k: usize) -> f64 {
    (((k as i64) * 7 + 13 * ai as i64) % 1024 + 1) as f64 / 1024.0
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn extent_rust(scop: &Scop, row: &[i64]) -> String {
    let p = scop.params.len();
    let mut parts: Vec<String> = Vec::new();
    for (k, &c) in row[..p].iter().enumerate() {
        if c != 0 {
            let name = format!(
                "P_{}",
                scop.params[k]
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c.to_ascii_uppercase() } else { '_' })
                    .collect::<String>()
            );
            if c == 1 {
                parts.push(name);
            } else {
                parts.push(format!("{c} * {name}"));
            }
        }
    }
    if row[p] != 0 || parts.is_empty() {
        parts.push(format!("{}", row[p]));
    }
    format!("({})", parts.join(" + "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_values_are_nonzero_and_bounded() {
        for ai in 0..5 {
            for k in 0..5000 {
                let v = generic_value(ai, k);
                assert!(v > 0.0 && v <= 1.0, "v={v}");
            }
        }
    }

    #[test]
    fn generic_values_vary_within_columns() {
        // Any fixed stride through k produces non-constant values (needed
        // by correlation's stddev).
        let vals: Vec<f64> = (0..10).map(|i| generic_value(0, i * 16 + 3)).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
