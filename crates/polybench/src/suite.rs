//! The benchmark registry: all 22 kernels of Table II.

use crate::kernel::Kernel;
use crate::{
    kernels_blas as blas, kernels_extended as ext, kernels_solver as solver,
    kernels_stat as stat, kernels_stencil as stencil,
};

/// Every kernel of the paper's Table II, in the table's order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        blas::two_mm(),
        blas::three_mm(),
        solver::adi(),
        blas::atax(),
        blas::bicg(),
        solver::cholesky(),
        stat::correlation(),
        stat::covariance(),
        blas::doitgen(),
        stencil::fdtd_2d(),
        stencil::fdtd_apml(),
        blas::gemm(),
        blas::gemver(),
        blas::gesummv(),
        stencil::jacobi_1d(),
        stencil::jacobi_2d(),
        blas::mvt(),
        stencil::seidel_2d(),
        blas::symm(),
        blas::syr2k(),
        blas::syrk(),
        solver::trisolv(),
    ]
}

/// Kernels beyond Table II (not part of the reproduced figures): their
/// triangular / in-place dependence patterns broaden optimizer coverage.
pub fn extended_kernels() -> Vec<Kernel> {
    vec![ext::lu(), ext::trmm(), ext::gramschmidt()]
}

/// Looks up a kernel by name across the Table II and extended suites.
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels()
        .into_iter()
        .chain(extended_kernels())
        .find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_22_table_ii_entries() {
        let ks = all_kernels();
        assert_eq!(ks.len(), 22);
        let names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        for expected in [
            "2mm",
            "3mm",
            "adi",
            "atax",
            "bicg",
            "cholesky",
            "correlation",
            "covariance",
            "doitgen",
            "fdtd-2d",
            "fdtd-apml",
            "gemm",
            "gemver",
            "gesummv",
            "jacobi-1d-imper",
            "jacobi-2d-imper",
            "mvt",
            "seidel-2d",
            "symm",
            "syr2k",
            "syrk",
            "trisolv",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_kernel_has_four_datasets_and_positive_flops() {
        for k in all_kernels() {
            let ds = (k.datasets)();
            assert_eq!(ds.len(), 4, "{}", k.name);
            for d in &ds {
                assert!((k.flops)(&d.params) > 0, "{} {}", k.name, d.name);
            }
        }
    }

    #[test]
    fn scop_default_params_match_param_count() {
        for k in all_kernels() {
            let scop = (k.build)();
            assert_eq!(
                scop.params.len(),
                k.dataset("mini").params.len(),
                "{}",
                k.name
            );
            assert_eq!(scop.default_params.len(), scop.params.len());
        }
    }

    #[test]
    fn kernel_by_name_roundtrip() {
        assert!(kernel_by_name("gemm").is_some());
        assert!(kernel_by_name("nope").is_none());
    }

    #[test]
    fn domains_are_enumerable_at_mini_sizes() {
        // Every statement's domain must be a bounded polyhedron once
        // parameters are fixed; also sanity-check instance counts > 0.
        for k in all_kernels() {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut total = 0usize;
            for s in &scop.statements {
                let dom = scop.instantiate_domain(s, &params);
                total += dom.enumerate().len();
            }
            assert!(total > 0, "{} has empty domains", k.name);
        }
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;

    /// Every kernel's SCoP must pass structural + bounds validation at
    /// its default parameters (catches builder typos in subscripts).
    #[test]
    fn every_kernel_scop_validates() {
        for k in all_kernels().into_iter().chain(extended_kernels()) {
            let scop = (k.build)();
            scop.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
