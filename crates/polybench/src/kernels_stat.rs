//! Data-mining kernels: `correlation` and `covariance`.
//!
//! Both follow PolyBench/C 3.2 with two deviations, documented in
//! DESIGN.md: the `stddev <= eps ? 1 : stddev` data-dependent conditional
//! of `correlation` is dropped (the generic initialization guarantees
//! non-constant columns, so the guard never fires on our inputs), and the
//! trailing `symmat[M-1][M-1] = 1` scalar store is folded into the main
//! triangular nest's diagonal statement.

use crate::kernel::{Dataset, Group, InitSpec, Kernel};
use polymix_ir::builder::{con, ix, par, ScopBuilder};
use polymix_ir::{BinOp, Expr, Scop};

fn a(v: f64) -> Expr {
    Expr::Const(v)
}

// ----------------------------------------------------------- covariance --

/// `covariance`: symmetric covariance matrix of an `N × M` data matrix.
pub fn covariance() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("covariance", &["N", "M"], &[8, 8]);
        let data = b.array("data", &["N", "M"]);
        let symmat = b.array("symmat", &["M", "M"]);
        let mean = b.array("mean", &["M"]);
        // mean[j] = (Σ_i data[i][j]) / N
        b.enter("j", con(0), par("M"));
        b.stmt("M0", mean, &[ix("j")], a(0.0));
        b.enter("i", con(0), par("N"));
        let d = b.rd(data, &[ix("i"), ix("j")]);
        b.stmt_update("M1", mean, &[ix("j")], BinOp::Add, d);
        b.exit();
        let div = Expr::div(b.rd(mean, &[ix("j")]), Expr::Param(0));
        b.stmt("M2", mean, &[ix("j")], div);
        b.exit();
        // Center the data.
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("M"));
        let m = b.rd(mean, &[ix("j")]);
        b.stmt_update("C0", data, &[ix("i"), ix("j")], BinOp::Sub, m);
        b.exit();
        b.exit();
        // symmat[j1][j2] = Σ_i data[i][j1]·data[i][j2], j2 >= j1; mirrored.
        b.enter("j1", con(0), par("M"));
        b.enter("j2", ix("j1"), par("M"));
        b.stmt("V0", symmat, &[ix("j1"), ix("j2")], a(0.0));
        b.enter("i", con(0), par("N"));
        let prod = Expr::mul(
            b.rd(data, &[ix("i"), ix("j1")]),
            b.rd(data, &[ix("i"), ix("j2")]),
        );
        b.stmt_update("V1", symmat, &[ix("j1"), ix("j2")], BinOp::Add, prod);
        b.exit();
        let cp = b.rd(symmat, &[ix("j1"), ix("j2")]);
        b.stmt("V2", symmat, &[ix("j2"), ix("j1")], cp);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (n, m) = (p[0] as usize, p[1] as usize);
        let (data, rest) = arr.split_at_mut(1);
        let data = &mut data[0];
        let (symmat, mean) = rest.split_at_mut(1);
        let (symmat, mean) = (&mut symmat[0], &mut mean[0]);
        for j in 0..m {
            mean[j] = 0.0;
            for i in 0..n {
                mean[j] += data[i * m + j];
            }
            mean[j] /= n as f64;
        }
        for i in 0..n {
            for j in 0..m {
                data[i * m + j] -= mean[j];
            }
        }
        for j1 in 0..m {
            for j2 in j1..m {
                symmat[j1 * m + j2] = 0.0;
                for i in 0..n {
                    symmat[j1 * m + j2] += data[i * m + j1] * data[i * m + j2];
                }
                symmat[j2 * m + j1] = symmat[j1 * m + j2];
            }
        }
    }
    Kernel {
        name: "covariance",
        description: "Covariance Computation",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| {
            let (n, m) = (p[0], p[1]);
            (m * (n + 1) + n * m + m * (m + 1) / 2 * 2 * n) as u64
        },
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![12, 12] },
                Dataset { name: "small", params: vec![128, 128] },
                Dataset { name: "standard", params: vec![512, 512] },
                Dataset { name: "large", params: vec![1024, 1024] },
            ]
        },
        init: InitSpec::generic(),
    }
}

// ---------------------------------------------------------- correlation --

/// `correlation`: correlation matrix (covariance normalized by per-column
/// standard deviations).
pub fn correlation() -> Kernel {
    fn build() -> Scop {
        let mut b = ScopBuilder::new("correlation", &["N", "M"], &[8, 8]);
        let data = b.array("data", &["N", "M"]);
        let symmat = b.array("symmat", &["M", "M"]);
        let mean = b.array("mean", &["M"]);
        let stddev = b.array("stddev", &["M"]);
        // Means.
        b.enter("j", con(0), par("M"));
        b.stmt("M0", mean, &[ix("j")], a(0.0));
        b.enter("i", con(0), par("N"));
        let d = b.rd(data, &[ix("i"), ix("j")]);
        b.stmt_update("M1", mean, &[ix("j")], BinOp::Add, d);
        b.exit();
        let div = Expr::div(b.rd(mean, &[ix("j")]), Expr::Param(0));
        b.stmt("M2", mean, &[ix("j")], div);
        b.exit();
        // Standard deviations.
        b.enter("j", con(0), par("M"));
        b.stmt("D0", stddev, &[ix("j")], a(0.0));
        b.enter("i", con(0), par("N"));
        let dev = Expr::sub(b.rd(data, &[ix("i"), ix("j")]), b.rd(mean, &[ix("j")]));
        b.stmt_update(
            "D1",
            stddev,
            &[ix("j")],
            BinOp::Add,
            Expr::mul(dev.clone(), dev),
        );
        b.exit();
        let fin = Expr::sqrt(Expr::div(b.rd(stddev, &[ix("j")]), Expr::Param(0)));
        b.stmt("D2", stddev, &[ix("j")], fin);
        b.exit();
        // Center and scale: data = (data - mean) / (sqrt(N)·stddev).
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("M"));
        let m = b.rd(mean, &[ix("j")]);
        b.stmt_update("C0", data, &[ix("i"), ix("j")], BinOp::Sub, m);
        let scaled = Expr::div(
            b.rd(data, &[ix("i"), ix("j")]),
            Expr::mul(Expr::sqrt(Expr::Param(0)), b.rd(stddev, &[ix("j")])),
        );
        b.stmt("C1", data, &[ix("i"), ix("j")], scaled);
        b.exit();
        b.exit();
        // Correlation matrix (upper triangle + mirror; diagonal = 1).
        b.enter("j1", con(0), par("M"));
        b.stmt("R0", symmat, &[ix("j1"), ix("j1")], a(1.0));
        b.enter("j2", ix("j1") + con(1), par("M"));
        b.stmt("R1", symmat, &[ix("j1"), ix("j2")], a(0.0));
        b.enter("i", con(0), par("N"));
        let prod = Expr::mul(
            b.rd(data, &[ix("i"), ix("j1")]),
            b.rd(data, &[ix("i"), ix("j2")]),
        );
        b.stmt_update("R2", symmat, &[ix("j1"), ix("j2")], BinOp::Add, prod);
        b.exit();
        let cp = b.rd(symmat, &[ix("j1"), ix("j2")]);
        b.stmt("R3", symmat, &[ix("j2"), ix("j1")], cp);
        b.exit();
        b.exit();
        b.finish().expect("well-formed SCoP")
    }
    fn reference(p: &[i64], arr: &mut [Vec<f64>]) {
        let (n, m) = (p[0] as usize, p[1] as usize);
        let (data, rest) = arr.split_at_mut(1);
        let data = &mut data[0];
        let (symmat, rest2) = rest.split_at_mut(1);
        let symmat = &mut symmat[0];
        let (mean, stddev) = rest2.split_at_mut(1);
        let (mean, stddev) = (&mut mean[0], &mut stddev[0]);
        let nf = n as f64;
        for j in 0..m {
            mean[j] = 0.0;
            for i in 0..n {
                mean[j] += data[i * m + j];
            }
            mean[j] /= nf;
        }
        for j in 0..m {
            stddev[j] = 0.0;
            for i in 0..n {
                let dev = data[i * m + j] - mean[j];
                stddev[j] += dev * dev;
            }
            stddev[j] = (stddev[j] / nf).sqrt();
        }
        for i in 0..n {
            for j in 0..m {
                data[i * m + j] -= mean[j];
                data[i * m + j] /= nf.sqrt() * stddev[j];
            }
        }
        for j1 in 0..m {
            symmat[j1 * m + j1] = 1.0;
            for j2 in j1 + 1..m {
                symmat[j1 * m + j2] = 0.0;
                for i in 0..n {
                    symmat[j1 * m + j2] += data[i * m + j1] * data[i * m + j2];
                }
                symmat[j2 * m + j1] = symmat[j1 * m + j2];
            }
        }
    }
    Kernel {
        name: "correlation",
        description: "Correlation Computation",
        group: Group::Reduction,
        build,
        reference,
        flops: |p| {
            let (n, m) = (p[0], p[1]);
            (m * (n + 1) + m * (3 * n + 2) + 3 * n * m + m * (m - 1) / 2 * 2 * n) as u64
        },
        datasets: || {
            vec![
                Dataset { name: "mini", params: vec![12, 12] },
                Dataset { name: "small", params: vec![128, 128] },
                Dataset { name: "standard", params: vec![512, 512] },
                Dataset { name: "large", params: vec![1024, 1024] },
            ]
        },
        init: InitSpec::generic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_kernels_build_and_run_finite() {
        for k in [covariance(), correlation()] {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut arrays = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut arrays);
            for (ai, arr) in arrays.iter().enumerate() {
                assert!(
                    arr.iter().all(|x| x.is_finite()),
                    "{} array {ai} non-finite",
                    k.name
                );
            }
        }
    }

    #[test]
    fn correlation_diagonal_is_one_and_offdiag_bounded() {
        let k = correlation();
        let scop = (k.build)();
        let params = vec![32, 8];
        let mut arrays = k.fresh_arrays(&scop, &params);
        (k.reference)(&params, &mut arrays);
        let m = 8usize;
        let s = &arrays[1];
        for j in 0..m {
            assert!((s[j * m + j] - 1.0).abs() < 1e-12);
            for j2 in 0..m {
                assert!(s[j * m + j2].abs() <= 1.0 + 1e-9, "corr {}", s[j * m + j2]);
            }
        }
        // Symmetry.
        for j1 in 0..m {
            for j2 in 0..m {
                assert!((s[j1 * m + j2] - s[j2 * m + j1]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_matches_direct_formula() {
        let k = covariance();
        let scop = (k.build)();
        let params = vec![16, 4];
        let mut arrays = k.fresh_arrays(&scop, &params);
        let orig = arrays[0].clone();
        (k.reference)(&params, &mut arrays);
        let (n, m) = (16usize, 4usize);
        // Direct covariance of columns 1 and 2 (unnormalized, as in 3.2).
        let mean = |j: usize| orig.iter().skip(j).step_by(m).sum::<f64>() / n as f64;
        let (m1, m2) = (mean(1), mean(2));
        let direct: f64 = (0..n)
            .map(|i| (orig[i * m + 1] - m1) * (orig[i * m + 2] - m2))
            .sum();
        assert!((arrays[1][m + 2] - direct).abs() < 1e-9);
    }
}
