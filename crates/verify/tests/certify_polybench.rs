//! Zero-false-positive property: every program the compiler actually
//! produces — from any rung of the scheduling fallback chain, any
//! poly+AST option mix, and any Pluto baseline variant — must certify.
//! These are all semantics-preserving by the interpreter oracle tests,
//! so a violation here is a certifier bug, not a compiler bug.

use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_pluto::{optimize_pluto, schedule_with_fallback, Fusion, PlutoOptions, PlutoVariant};
use polymix_polybench::{all_kernels, extended_kernels};

fn every_kernel() -> Vec<polymix_polybench::Kernel> {
    all_kernels().into_iter().chain(extended_kernels()).collect()
}
use polymix_verify::verify_program;

fn assert_certified(kernel: &str, label: &str, prog: &polymix_ast::tree::Program) {
    let cert = verify_program(prog);
    assert!(
        cert.is_certified(),
        "{kernel} [{label}]: false positive(s):\n{}",
        cert.errors()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(cert.deps_checked > 0 || cert.pairs_checked == 0);
}

fn opts_small() -> PolyAstOptions {
    PolyAstOptions {
        tile: 4,
        time_tile: 2,
        ..Default::default()
    }
}

/// Satellite: the whole `maxfuse -> smartfuse -> nofuse -> identity`
/// fallback chain yields certified schedules on all 22 kernels.
#[test]
fn fallback_chain_certifies_on_all_kernels() {
    for k in every_kernel() {
        let scop = (k.build)();
        for fusion in [Fusion::Max, Fusion::Smart, Fusion::None] {
            let fb = schedule_with_fallback(&scop, fusion);
            let prog = polymix_codegen::generate(&scop, &fb.schedules).expect("generate");
            assert_certified(k.name, &format!("{fusion:?}"), &prog);
        }
        // Identity rung: original textual-order schedules.
        let identity: Vec<_> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
        let prog = polymix_codegen::generate(&scop, &identity).expect("generate");
        assert_certified(k.name, "identity", &prog);
    }
}

/// Every poly+AST pipeline output (all option mixes the flow tests run)
/// certifies — including tiled, pipeline-annotated and unroll-and-jammed
/// programs.
#[test]
fn poly_ast_outputs_certify_on_all_kernels() {
    let variants: Vec<(&str, PolyAstOptions)> = vec![
        ("default", opts_small()),
        (
            "untiled",
            PolyAstOptions {
                tiling: false,
                ..opts_small()
            },
        ),
        (
            "doall-only",
            PolyAstOptions {
                doall_only: true,
                ..opts_small()
            },
        ),
        (
            "unroll-2x2",
            PolyAstOptions {
                unroll: (2, 2),
                ..opts_small()
            },
        ),
    ];
    for k in every_kernel() {
        let scop = (k.build)();
        for (label, opts) in &variants {
            let prog = optimize_poly_ast(&scop, opts).expect("optimize");
            assert_certified(k.name, label, &prog);
        }
    }
}

/// Every Pluto baseline output certifies, including wavefronted tile
/// nests and the vectorization variant's register tiling.
#[test]
fn pluto_outputs_certify_on_all_kernels() {
    for k in every_kernel() {
        let scop = (k.build)();
        for variant in [
            PlutoVariant::Pocc,
            PlutoVariant::PoccVect,
            PlutoVariant::MaxFuse,
            PlutoVariant::NoFuse,
        ] {
            let opts = PlutoOptions {
                variant,
                tile: 4,
                time_tile: 2,
                ..Default::default()
            };
            let prog = optimize_pluto(&scop, &opts).expect("optimize");
            assert_certified(k.name, &format!("{variant:?}"), &prog);
        }
    }
}
