//! Zero-false-negative spot checks: hand-broken programs and kernel
//! sources must be rejected with the *right* violation kind.
//!
//! Each test takes a program the compiler really produces (so it
//! certifies cleanly), applies one adversarial mutation a buggy
//! transformation could plausibly introduce, and asserts the certifier
//! catches it. Together with `certify_polybench` (no false positives on
//! legal outputs) this pins the certifier from both sides.

use polymix_ast::tree::{Node, Par, Program, StmtNode};
use polymix_codegen::emit::{emit_rust, EmitOptions};
use polymix_core::{optimize_poly_ast, PolyAstOptions};
use polymix_polybench::kernel_by_name;
use polymix_verify::{verify_program, verify_source, ViolationKind};

/// The untransformed textual-order program for `name` — always legal.
fn identity_program(name: &str) -> Program {
    let k = kernel_by_name(name).expect("kernel");
    let scop = (k.build)();
    let identity: Vec<_> = scop.statements.iter().map(|s| s.schedule.clone()).collect();
    polymix_codegen::generate(&scop, &identity).expect("generate")
}

fn poly_ast_program(name: &str) -> Program {
    let k = kernel_by_name(name).expect("kernel");
    let scop = (k.build)();
    let opts = PolyAstOptions {
        tile: 4,
        time_tile: 2,
        ..Default::default()
    };
    optimize_poly_ast(&scop, &opts).expect("optimize")
}

fn mutate_stmts(node: &mut Node, f: &mut impl FnMut(&mut StmtNode)) {
    match node {
        Node::Seq(xs) => xs.iter_mut().for_each(|x| mutate_stmts(x, f)),
        Node::Loop(l) => mutate_stmts(&mut l.body, f),
        Node::Guard(_, b) => mutate_stmts(b, f),
        Node::Stmt(s) => f(s),
    }
}

fn assert_rejects(prog: &Program, kind: ViolationKind, label: &str) {
    let cert = verify_program(prog);
    assert!(
        !cert.is_certified(),
        "{label}: broken program certified clean"
    );
    assert!(
        cert.violations.iter().any(|v| v.kind == kind),
        "{label}: expected a {kind:?} violation, got:\n{}",
        cert.violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Row swap: exchanging the two outer rows of the inverse schedule is a
/// loop interchange. jacobi-1d carries `(1, -1)` dependences, so the
/// interchange runs some targets before their sources.
#[test]
fn illegal_interchange_is_rejected() {
    let mut prog = identity_program("jacobi-1d-imper");
    assert!(verify_program(&prog).is_certified(), "baseline must pass");
    mutate_stmts(&mut prog.body, &mut |s| {
        if s.iter_exprs.len() >= 2 {
            s.iter_exprs.swap(0, 1);
        }
    });
    assert_rejects(&prog, ViolationKind::IllegalOrder, "row swap");
}

/// Sign flip: negating the time row of the inverse schedule makes the
/// program sweep time backwards — every `dt >= 1` dependence reverses.
#[test]
fn reversed_time_loop_is_rejected() {
    let mut prog = identity_program("jacobi-1d-imper");
    mutate_stmts(&mut prog.body, &mut |s| {
        s.iter_exprs[0] = s.iter_exprs[0].scale(-1);
    });
    assert_rejects(&prog, ViolationKind::IllegalOrder, "sign flip");
}

/// Bogus reduction: the time loop of a stencil carries ordinary flow
/// dependences, not associative self-updates; annotating it `Reduction`
/// must not discharge them.
#[test]
fn bogus_reduction_annotation_is_rejected() {
    let mut prog = identity_program("jacobi-1d-imper");
    let mut outer = true;
    prog.body.visit_loops_mut(&mut |l| {
        if outer {
            l.par = Par::Reduction;
            outer = false;
        }
    });
    assert_rejects(&prog, ViolationKind::ReductionUnsafe, "bogus reduction");
}

/// Annotation forgery: relabeling a certified pipeline loop as doall
/// drops the await cone the carried dependences rely on.
#[test]
fn pipeline_relabeled_doall_is_rejected() {
    let mut prog = poly_ast_program("seidel-2d");
    assert!(verify_program(&prog).is_certified(), "baseline must pass");
    let mut flipped = false;
    prog.body.visit_loops_mut(&mut |l| {
        if !flipped && l.par == Par::Pipeline {
            l.par = Par::Doall;
            flipped = true;
        }
    });
    assert!(flipped, "seidel-2d lost its pipeline loop");
    assert_rejects(&prog, ViolationKind::DoallCarriesDep, "forged doall");
}

/// Await drop: stripping the `await_progress` calls from an emitted
/// pipeline kernel leaves published progress nobody waits on — the
/// source lint must flag the region.
#[test]
fn dropped_await_is_rejected_by_source_lint() {
    let k = kernel_by_name("seidel-2d").expect("kernel");
    let prog = poly_ast_program("seidel-2d");
    let opts = EmitOptions {
        params: k.dataset("mini").params,
        threads: 4,
        ..Default::default()
    };
    let src = emit_rust(&prog, &opts);
    assert!(
        src.contains("await_progress("),
        "emitted seidel-2d kernel has no pipeline synchronization to drop"
    );
    assert!(
        verify_source("seidel-2d", &src).is_certified(),
        "unmutated source must lint clean"
    );
    let broken: String = src
        .lines()
        .filter(|l| !l.contains("await_progress("))
        .collect::<Vec<_>>()
        .join("\n");
    let cert = verify_source("seidel-2d", &broken);
    assert!(
        cert.violations
            .iter()
            .any(|v| v.kind == ViolationKind::KernelLint),
        "await drop: expected a KernelLint violation, got:\n{}",
        cert.violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Counter-graph lowering: with the `taskgraph` knob on, the wavefront
/// tiles of seidel-2d come out as a counter-graph region that the
/// source lint certifies; stripping the successor decrements (tiles
/// complete but never release their dependents — the kernel would hang)
/// must be flagged.
#[test]
fn emitted_taskgraph_kernel_lints_clean_and_tampering_is_caught() {
    use polymix_pluto::{optimize_pluto, PlutoOptions};
    let k = kernel_by_name("seidel-2d").expect("kernel");
    let scop = (k.build)();
    let prog = optimize_pluto(&scop, &PlutoOptions::default()).expect("optimize");
    let opts = EmitOptions {
        params: k.dataset("mini").params,
        threads: 4,
        taskgraph: true,
        ..Default::default()
    };
    let src = emit_rust(&prog, &opts);
    assert!(
        src.contains("// taskgraph region"),
        "taskgraph knob must lower the wavefront tiles to a counter graph"
    );
    assert!(
        verify_source("seidel-2d", &src).is_certified(),
        "unmutated taskgraph source must lint clean:\n{}",
        verify_source("seidel-2d", &src)
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let broken: String = src
        .lines()
        .filter(|l| !l.contains(".fetch_sub(1"))
        .collect::<Vec<_>>()
        .join("\n");
    let cert = verify_source("seidel-2d", &broken);
    assert!(
        cert.violations
            .iter()
            .any(|v| v.kind == ViolationKind::KernelLint),
        "decrement drop: expected a KernelLint violation, got:\n{}",
        cert.violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The explicit-vect eligibility probe: jacobi-1d's two space loops are
/// innermost, stride-1 and dependence-free at fixed `t`, so both are
/// eligible — even though the emitter names them both `c2` (attribution
/// must not be fooled by duplicate display names across sibling nests).
#[test]
fn vect_eligibility_spans_duplicate_loop_names() {
    let prog = identity_program("jacobi-1d-imper");
    let vars = polymix_verify::vectorizable_inner_vars(&prog);
    assert_eq!(vars, vec![1, 2], "both space loops must be eligible");
    polymix_verify::certify_vect(&prog, &vars).expect("eligible vars certify");
}

/// Adversarial: requesting the vect rewrite on a dependence-carrying
/// innermost loop (seidel-2d's in-place sweep reads the value its left
/// neighbor just wrote) must be rejected as a legality error, never
/// silently accepted.
#[test]
fn vect_on_dependence_carrying_loop_is_rejected() {
    let prog = identity_program("seidel-2d");
    assert!(
        polymix_verify::vectorizable_inner_vars(&prog).is_empty(),
        "seidel-2d identity has no vectorizable innermost loop"
    );
    let innermost_var = 2; // the j loop of the (t, i, j) nest
    let err = polymix_verify::certify_vect(&prog, &[innermost_var])
        .expect_err("carried dependence must reject the vect request");
    assert!(
        err.to_string().contains("not"),
        "error should say the variable is not certified: {err}"
    );
}

/// Adversarial: the k loop of gemm is an accumulation — its carried
/// reduction dependence disqualifies it from lane-grouped execution
/// (the emitter's rewrite is certified doall-only).
#[test]
fn vect_on_reduction_loop_is_rejected() {
    let prog = identity_program("gemm");
    let err = polymix_verify::certify_vect(&prog, &[2])
        .expect_err("the accumulation loop must not certify for vect");
    let polymix_ir::PolymixError::Legality { kernel, .. } = &err else {
        panic!("expected a Legality error, got {err:?}");
    };
    assert_eq!(kernel, "gemm");
}
