//! The merged-prefix walk: re-deriving, per dependence and per occurrence
//! pair, whether the transformed program orders the dependence forward
//! (certificate 1) and whether every parallel annotation on the shared
//! loops is safe (certificate 2).
//!
//! For each dependence `d` and each pair of occurrences of its endpoint
//! statements, the walker follows the two root paths from the program
//! root. While the paths agree they pass through the *same* loops; at
//! each such common level it forms the affine row `r = level(dst) -
//! level(src)` over the dependence space `[x_src | y_dst | params | 1]`
//! and queries Fourier-Motzkin emptiness on the violation polyhedron:
//!
//! * `remaining AND r <= -step` nonempty  =>  some dependent pair runs
//!   backward at this level: a certificate-1 violation. (True pairs at a
//!   common loop share the iteration lattice, so backward means at least
//!   one full step.)
//! * otherwise the pairs strictly ordered at this level (`r >= step`)
//!   are discharged — execution order is lexicographic in the common
//!   levels — and the walk continues on `remaining AND r == 0`.
//!
//! Tile controller variables have no affine inverse (their value is a
//! floor of a point variable). The walker instead uses the clamped point
//! loop the controller governs as a *proxy*: with a shared tile base,
//! `point_delta <= -1` implies the tile goes backward or the pair stays
//! in the same tile and fails at the point level anyway, and
//! `point_delta >= tile_step` implies the tile strictly advances. The
//! continuation keeps `0 <= point_delta <= tile_step - 1`.
//!
//! When the paths diverge at a sequence node the sibling order decides:
//! textual forward is satisfied, textual backward with a nonempty
//! remainder is a violation, as is exhausting both paths (two dependent
//! instances sharing a full timestamp).

use crate::occurrence::{LoopMeta, Occurrence, PStep};
use crate::violation::{Violation, ViolationKind};
use polymix_ast::tree::Par;
use polymix_deps::vectors::classify;
use polymix_deps::{Dep, DepElem};
use polymix_ir::Scop;
use polymix_math::poly::{Constraint, Polyhedron};

/// `poly AND row >= bound` (row carries its constant column).
fn with_ge(poly: &Polyhedron, row: &[i64], bound: i64) -> Polyhedron {
    let mut r = row.to_vec();
    let n = r.len();
    r[n - 1] -= bound;
    let mut p = poly.clone();
    p.add(Constraint::ge(r));
    p
}

/// `poly AND row <= bound`.
fn with_le(poly: &Polyhedron, row: &[i64], bound: i64) -> Polyhedron {
    let mut r: Vec<i64> = row.iter().map(|x| -x).collect();
    let n = r.len();
    r[n - 1] += bound;
    let mut p = poly.clone();
    p.add(Constraint::ge(r));
    p
}

/// `poly AND row == 0`.
fn with_eq0(poly: &Polyhedron, row: &[i64]) -> Polyhedron {
    let mut p = poly.clone();
    p.add(Constraint::eq(row.to_vec()));
    p
}

fn add_rows(a: &[i64], b: &[i64]) -> Vec<i64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// What happened at one common level.
enum LevelOutcome {
    /// Every remaining pair is strictly ordered (or none remain).
    Satisfied,
    /// A violation was recorded; stop walking this pair.
    Violated,
    /// Tied pairs remain; descend.
    Continue,
}

pub(crate) struct PairWalk<'a> {
    pub scop: &'a Scop,
    pub dep: &'a Dep,
    pub occ_s: &'a Occurrence,
    pub occ_d: &'a Occurrence,
    pub sample: &'a [i64],
    /// Transformed-space dependence vector accumulated along the walk.
    vector: Vec<DepElem>,
    level: usize,
    remaining: Polyhedron,
}

impl<'a> PairWalk<'a> {
    pub fn new(
        scop: &'a Scop,
        dep: &'a Dep,
        occ_s: &'a Occurrence,
        occ_d: &'a Occurrence,
        sample: &'a [i64],
    ) -> PairWalk<'a> {
        PairWalk {
            scop,
            dep,
            occ_s,
            occ_d,
            sample,
            vector: Vec::new(),
            level: 0,
            remaining: dep.poly.clone(),
        }
    }

    fn stmt_name(&self, idx: usize) -> String {
        self.scop
            .statements
            .get(idx)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("S{idx}"))
    }

    fn violation(&self, kind: ViolationKind, loop_name: &str, detail: String, fix: &str) -> Violation {
        Violation {
            kind,
            src: self.stmt_name(self.occ_s.stmt),
            dst: self.stmt_name(self.occ_d.stmt),
            vector: self.vector.clone(),
            level: self.level,
            loop_name: loop_name.to_string(),
            detail,
            fix: fix.to_string(),
        }
    }

    /// Statement-local solved row of `var` on one side, lifted into the
    /// dependence space.
    fn lifted(&self, var: usize, src_side: bool) -> Option<Vec<i64>> {
        if src_side {
            self.occ_s
                .solved
                .get(&var)
                .map(|r| self.dep.lift_src_row(r))
        } else {
            self.occ_d
                .solved
                .get(&var)
                .map(|r| self.dep.lift_dst_row(r))
        }
    }

    /// Intersects the guards found along both paths into the remainder:
    /// real executions satisfy them, so this only sharpens the model.
    fn apply_guards(&mut self) {
        for (occ, src_side) in [(self.occ_s, true), (self.occ_d, false)] {
            for step in &occ.path {
                let PStep::Guard { exprs } = step else {
                    continue;
                };
                'expr: for e in exprs {
                    let dim = occ.iter_exprs.len();
                    let np = self.scop.n_params();
                    let mut local = vec![0i64; dim + np + 1];
                    for &(v, c) in &e.var_coeffs {
                        if c == 0 {
                            continue;
                        }
                        let Some(sr) = occ.solved.get(&v) else {
                            continue 'expr; // unsolvable var: skip this expr
                        };
                        for (j, &x) in sr.iter().enumerate() {
                            local[j] += c * x;
                        }
                    }
                    for &(p, c) in &e.param_coeffs {
                        if p < np {
                            local[dim + p] += c;
                        }
                    }
                    local[dim + np] += e.c;
                    let lifted = if src_side {
                        self.dep.lift_src_row(&local)
                    } else {
                        self.dep.lift_dst_row(&local)
                    };
                    self.remaining.add(Constraint::ge(lifted));
                }
            }
        }
    }

    /// First loop at or after `steps[k]` (on one side's path suffix)
    /// whose lower bound mentions `ctrl` and whose own variable is
    /// solvable on that side — the clamped point loop governed by a tile
    /// controller. Returns the row with the proxy loop's own lattice
    /// step: an unrolled point loop spaces its real values that far
    /// apart, and off-lattice polyhedron points must not be mistaken for
    /// executions.
    fn proxy_row(
        &self,
        suffix: &[&PStep],
        ctrl: usize,
        src_side: bool,
    ) -> Option<(Vec<i64>, i64, usize)> {
        for step in suffix {
            let PStep::Loop(l) = step else { continue };
            if l.lo_vars.contains(&ctrl) {
                if let Some(r) = self.lifted(l.var, src_side) {
                    return Some((r, l.step, l.id));
                }
            }
        }
        None
    }

    /// The grid-column row below a pipeline/wavefront level on one side:
    /// the first deeper loop's value (paired with its lattice step and
    /// node id), or its proxy when that loop is itself a tile controller.
    /// The last element is the proxy span — `0` for a directly solved
    /// column, the controller's step when the value only bounds the real
    /// column to within one tile.
    fn column_row(&self, suffix: &[&PStep], src_side: bool) -> Option<(Vec<i64>, i64, usize, i64)> {
        for (k, step) in suffix.iter().enumerate() {
            let PStep::Loop(l) = step else { continue };
            if let Some(r) = self.lifted(l.var, src_side) {
                return Some((r, l.step, l.id, 0));
            }
            return self
                .proxy_row(&suffix[k + 1..], l.var, src_side)
                .map(|(r, f, id)| (r, f, id, l.step));
        }
        None
    }

    /// Runs the walk, appending any violations to `out`.
    pub fn run(mut self, out: &mut Vec<Violation>) {
        self.apply_guards();
        if self.remaining.is_empty() {
            return;
        }
        let steps_s: Vec<&PStep> = self
            .occ_s
            .path
            .iter()
            .filter(|s| !matches!(s, PStep::Guard { .. }))
            .collect();
        let steps_d: Vec<&PStep> = self
            .occ_d
            .path
            .iter()
            .filter(|s| !matches!(s, PStep::Guard { .. }))
            .collect();
        let mut k = 0usize;
        loop {
            match (steps_s.get(k), steps_d.get(k)) {
                (
                    Some(PStep::Seq {
                        id: a, child: ca, ..
                    }),
                    Some(PStep::Seq {
                        id: b, child: cb, ..
                    }),
                ) if a == b => {
                    if ca == cb {
                        k += 1;
                        continue;
                    }
                    // Textual divergence with identical shared iterations.
                    if ca > cb && !self.remaining.is_empty() {
                        out.push(self.violation(
                            ViolationKind::IllegalOrder,
                            "",
                            "target occurs textually before source while every shared loop \
                             level is tied"
                                .to_string(),
                            "reorder the statements or re-run scheduling; the transformed \
                             program inverts this dependence",
                        ));
                    }
                    return;
                }
                (Some(PStep::Loop(la)), Some(PStep::Loop(lb))) if la.id == lb.id => {
                    let outcome = self.handle_level(la, &steps_s[k + 1..], &steps_d[k + 1..], out);
                    match outcome {
                        LevelOutcome::Satisfied | LevelOutcome::Violated => return,
                        LevelOutcome::Continue => {
                            self.level += 1;
                            k += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        // Both paths exhausted (same statement node, or structurally
        // identical positions): any remaining pair shares its full
        // timestamp with its source.
        if !self.remaining.is_empty() {
            out.push(self.violation(
                ViolationKind::IllegalOrder,
                "",
                "two distinct dependent instances map to the same timestamp"
                    .to_string(),
                "the transformation dropped a loop level that carried this dependence; \
                 restore it or reject the schedule",
            ));
        }
    }

    fn handle_level(
        &mut self,
        l: &LoopMeta,
        rest_s: &[&PStep],
        rest_d: &[&PStep],
        out: &mut Vec<Violation>,
    ) -> LevelOutcome {
        // Reduction dependences are relaxed (privatized / reassociated)
        // at reduction and pipeline levels; they need no ordering below
        // either.
        if self.dep.is_reduction && matches!(l.par, Par::Reduction | Par::Pipeline) {
            return LevelOutcome::Satisfied;
        }

        let fine = self
            .lifted(l.var, true)
            .zip(self.lifted(l.var, false));
        let (r, lattice, coarse_span) = match fine {
            Some((rs, rd)) => {
                let r: Vec<i64> = rd.iter().zip(&rs).map(|(d, s)| d - s).collect();
                (r, l.step, None)
            }
            None => {
                let ps = self.proxy_row(rest_s, l.var, true);
                let pd = self.proxy_row(rest_d, l.var, false);
                match ps.zip(pd) {
                    Some(((rs, f, _), (rd, _, _))) => {
                        let r: Vec<i64> = rd.iter().zip(&rs).map(|(d, s)| d - s).collect();
                        (r, f, Some(l.step))
                    }
                    None => {
                        out.push(self.violation(
                            ViolationKind::Unsupported,
                            &l.name,
                            "loop variable has no affine inverse and no clamped point \
                             loop to proxy it; nothing proved for this dependence"
                                .to_string(),
                            "",
                        ));
                        return LevelOutcome::Satisfied;
                    }
                }
            }
        };

        self.vector
            .push(classify(&self.remaining, &r, self.sample));

        // Certificate 1: no dependent pair may run backward at this
        // level. Real pairs sit on the loop's (or proxy loop's) value
        // lattice, so "backward" means at least one lattice step; the
        // polyhedron's off-lattice points in `(-lattice, 0)` are not
        // executions.
        if !with_le(&self.remaining, &r, -lattice.max(1)).is_empty() {
            out.push(self.violation(
                ViolationKind::IllegalOrder,
                &l.name,
                format!(
                    "dependence runs backward at loop `{}` (target precedes source)",
                    l.name
                ),
                "the composed transformation reverses this dependence at this level; \
                 reject the schedule or re-skew the nest",
            ));
            return LevelOutcome::Violated;
        }

        // Certificate 2: annotation safety over the pre-shrink remainder
        // (carried pairs included). Carried means at least one lattice
        // step forward: with unrolled (step-f) loops the polyhedron holds
        // spurious off-lattice points with `0 < r < f`, never real pairs.
        let carried = lattice.max(1);
        let safe = match l.par {
            Par::Seq => true,
            Par::Doall => self.check_doall(l, &r, carried, out),
            Par::Reduction => self.check_reduction(l, &r, carried, out),
            Par::Pipeline => self.check_pipeline(l, &r, rest_s, rest_d, out),
            Par::Wavefront => self.check_wavefront(l, &r, rest_s, rest_d, out),
        };
        if !safe {
            return LevelOutcome::Violated;
        }

        // Shrink: keep the tied pairs, discharge the strictly ordered.
        self.remaining = match coarse_span {
            None => with_eq0(&self.remaining, &r),
            Some(m) => with_le(&with_ge(&self.remaining, &r, 0), &r, m - 1),
        };
        if self.remaining.is_empty() {
            LevelOutcome::Satisfied
        } else {
            LevelOutcome::Continue
        }
    }

    fn check_doall(&self, l: &LoopMeta, r: &[i64], carried: i64, out: &mut Vec<Violation>) -> bool {
        if with_ge(&self.remaining, r, carried).is_empty() {
            return true;
        }
        out.push(self.violation(
            ViolationKind::DoallCarriesDep,
            &l.name,
            format!("doall loop `{}` carries this dependence", l.name),
            "demote the loop to sequential, or to reduction/pipeline if the carried \
             dependences qualify",
        ));
        false
    }

    fn check_reduction(
        &self,
        l: &LoopMeta,
        r: &[i64],
        carried: i64,
        out: &mut Vec<Violation>,
    ) -> bool {
        // Reduction self-updates were discharged above; anything still
        // here must not be carried in either direction.
        if with_ge(&self.remaining, r, carried).is_empty() {
            return true;
        }
        out.push(self.violation(
            ViolationKind::ReductionUnsafe,
            &l.name,
            format!(
                "reduction loop `{}` carries a dependence that is not an \
                 associative-commutative self-update",
                l.name
            ),
            "only `A[f] = A[f] + e` / `A[f] = A[f] * e` self-updates may be carried; \
             demote the loop to sequential",
        ));
        false
    }

    /// Sibling phase index of one side directly below the pipeline loop:
    /// `Some(i)` when the loop body is a `Seq` and the side descends into
    /// its `i`-th loop child, `None` for a single sub-nest.
    fn sibling_of(suffix: &[&PStep]) -> Result<Option<usize>, ()> {
        match suffix.first() {
            Some(PStep::Seq { loop_sib, .. }) => match loop_sib {
                Some(s) => Ok(Some(*s)),
                None => Err(()), // non-loop sibling under a fused pipeline
            },
            _ => Ok(None),
        }
    }

    fn check_pipeline(
        &self,
        l: &LoopMeta,
        r: &[i64],
        rest_s: &[&PStep],
        rest_d: &[&PStep],
        out: &mut Vec<Violation>,
    ) -> bool {
        // Phase order: the emitter runs a fused body's sibling sub-loops
        // as consecutive phases of each outer step. A dependence into an
        // earlier sibling must advance the outer level.
        let sibs = Self::sibling_of(rest_s).and_then(|s| Self::sibling_of(rest_d).map(|d| (s, d)));
        let (sib_s, sib_d) = match sibs {
            Ok((s, d)) => (s.unwrap_or(0), d.unwrap_or(0)),
            Err(()) => {
                out.push(self.violation(
                    ViolationKind::Unsupported,
                    &l.name,
                    "pipeline loop body mixes loop and non-loop siblings; the fused \
                     phase protocol is not certified for this dependence"
                        .to_string(),
                    "",
                ));
                return true;
            }
        };
        if sib_d < sib_s && !with_eq0(&self.remaining, r).is_empty() {
            out.push(self.violation(
                ViolationKind::PipelineConeUncovered,
                &l.name,
                format!(
                    "dependence flows to an earlier sibling phase of pipeline loop \
                     `{}` within the same outer step",
                    l.name
                ),
                "the await cone {(-1,0),(0,-1)} cannot cover a backward phase; \
                 demote the loop or reorder the fused siblings",
            ));
            return false;
        }
        // Column order. The emitter carves thread blocks on a common
        // absolute grid with the chunk rounded up to the largest sibling
        // step, and progress counts (outer step, sibling) *phases*; the
        // right-neighbor await trails one phase. A dependent pair is
        // therefore covered when its leftward column movement is at most
        // one block — at least `max_step` cells — per phase advance:
        //
        //     -rc  <=  max_step * dphase ,
        //     dphase = nsib * (r / outer_step) + (sib_d - sib_s).
        //
        // Linearized with the conservative lower bound `nsib >= 1` and
        // scaled by the outer step, a pair is *uncovered* when
        //
        //     step*rc + max_step*r  <=  -step*(max_step*dsib + margin)
        //
        // where `margin` rounds up to the column lattice when both sides
        // sit in the same (possibly unrolled) loop, and to the tile span
        // when the column is a proxied controller (same-tile jitter never
        // crosses a block boundary: the chunk is a step multiple), so
        // off-lattice and same-tile polyhedron points are not mistaken
        // for cross-thread executions.
        let cols = self
            .column_row(rest_s, true)
            .zip(self.column_row(rest_d, false));
        let Some(((cs, fs, ids, hs), (cd, fd, idd, hd))) = cols else {
            out.push(self.violation(
                ViolationKind::Unsupported,
                &l.name,
                "pipeline loop has no analyzable inner grid dimension; the await \
                 cone is not certified for this dependence"
                    .to_string(),
                "",
            ));
            return true;
        };
        let rc: Vec<i64> = cd.iter().zip(&cs).map(|(d, s)| d - s).collect();
        let step = l.step.max(1);
        let max_step = fs.max(fd).max(hs).max(hd).max(1);
        let margin = if hs == 0 && hd == 0 {
            if ids == idd {
                fs.max(1)
            } else {
                1
            }
        } else {
            hs.max(hd)
        };
        let dsib = sib_d as i64 - sib_s as i64;
        let w: Vec<i64> = rc
            .iter()
            .zip(r)
            .map(|(c, rr)| step * c + max_step * rr)
            .collect();
        // Real pairs never run backward at a passed level; drop the
        // off-lattice negative-`r` points before testing the cone.
        let fwd = with_ge(&self.remaining, r, 0);
        if with_le(&fwd, &w, -step * (max_step * dsib + margin)).is_empty() {
            return true;
        }
        out.push(self.violation(
            ViolationKind::PipelineConeUncovered,
            &l.name,
            format!(
                "carried dependence of pipeline loop `{}` moves leftward in the \
                 grid column: not covered by await sources (i-1, j), (i, j-1)",
                l.name
            ),
            "skew the inner dimension until every carried dependence is \
             componentwise non-negative, or demote the loop",
        ));
        false
    }

    fn check_wavefront(
        &self,
        l: &LoopMeta,
        r: &[i64],
        rest_s: &[&PStep],
        rest_d: &[&PStep],
        out: &mut Vec<Violation>,
    ) -> bool {
        // The wavefront pair (this level, next level) executes diagonal
        // by diagonal with a barrier in between; componentwise
        // non-negative dependences strictly advance the (weighted)
        // diagonal unless fully tied, which is exactly the safe set.
        let cols = self
            .column_row(rest_s, true)
            .zip(self.column_row(rest_d, false));
        let Some(((cs, _, _, _), (cd, _, _, _))) = cols else {
            out.push(self.violation(
                ViolationKind::Unsupported,
                &l.name,
                "wavefront loop has no analyzable inner dimension; the diagonal \
                 schedule is not certified for this dependence"
                    .to_string(),
                "",
            ));
            return true;
        };
        let rc: Vec<i64> = cd.iter().zip(&cs).map(|(d, s)| d - s).collect();
        let diag = add_rows(r, &rc);
        if !with_le(&self.remaining, &diag, -1).is_empty() {
            out.push(self.violation(
                ViolationKind::WavefrontUnsafe,
                &l.name,
                format!(
                    "dependence crosses the wavefront diagonal of `{}` backward",
                    l.name
                ),
                "the diagonal schedule reverses this dependence; demote the loop",
            ));
            return false;
        }
        if !with_le(&self.remaining, &rc, -1).is_empty() {
            out.push(self.violation(
                ViolationKind::WavefrontUnsafe,
                &l.name,
                format!(
                    "dependence races within a diagonal of wavefront loop `{}` \
                     (distinct cells, inner component negative)",
                    l.name
                ),
                "cells of one diagonal run in parallel; skew until carried \
                 dependences are componentwise non-negative or demote the loop",
            ));
            return false;
        }
        true
    }
}
