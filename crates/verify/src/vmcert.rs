//! Translation validation of the bytecode lowering: the AST certifier
//! proves the *transformed program* legal, `polymix_vm::certify` proves
//! the *lowered bytecode* safe, and this module checks that the two
//! artifacts tell the same story — so a lowering bug (a skewed address,
//! a widened bound, a mislabeled or dropped parallel annotation) is a
//! certification failure before a single cell is measured.
//!
//! The bytecode side is re-derived entirely from [`VmProgram`]; nothing
//! here trusts the AST certificate, and nothing in `polymix_vm::certify`
//! trusts the AST. Agreement is the evidence that lowering preserved
//! meaning.

use crate::violation::{Certificate, Violation, ViolationKind};
use polymix_ast::tree::{Node, Par, Program};
use polymix_vm::{CNode, VmCertificate, VmProgram, VmViolationKind};

/// Parallel-annotation census of a loop tree: how many loops carry each
/// dispatchable annotation. Lowering must preserve this multiset — it
/// folds parameters and pre-composes addresses, but never invents or
/// drops a parallel loop.
fn ast_census(n: &Node, counts: &mut [usize; 4]) {
    match n {
        Node::Seq(xs) => xs.iter().for_each(|x| ast_census(x, counts)),
        Node::Guard(_, b) => ast_census(b, counts),
        Node::Stmt(_) => {}
        Node::Loop(l) => {
            match l.par {
                Par::Doall => counts[0] += 1,
                Par::Reduction => counts[1] += 1,
                Par::Pipeline => counts[2] += 1,
                Par::Wavefront => counts[3] += 1,
                Par::Seq => {}
            }
            ast_census(&l.body, counts);
        }
    }
}

fn vm_census(n: &CNode, counts: &mut [usize; 4]) {
    match n {
        CNode::Seq(xs) => xs.iter().for_each(|x| vm_census(x, counts)),
        CNode::Guard(_, b) => vm_census(b, counts),
        CNode::Stmt(_) => {}
        CNode::Loop(l) => {
            match l.par {
                Par::Doall => counts[0] += 1,
                Par::Reduction => counts[1] += 1,
                Par::Pipeline => counts[2] += 1,
                Par::Wavefront => counts[3] += 1,
                Par::Seq => {}
            }
            vm_census(&l.body, counts);
        }
    }
}

fn lift(kind: VmViolationKind) -> ViolationKind {
    match kind {
        VmViolationKind::OutOfBounds | VmViolationKind::BoundsUnproven => ViolationKind::VmBounds,
        VmViolationKind::DoallCarriesDep => ViolationKind::DoallCarriesDep,
        VmViolationKind::ReductionUnsafe => ViolationKind::ReductionUnsafe,
        VmViolationKind::GridUncovered => ViolationKind::PipelineConeUncovered,
        VmViolationKind::Malformed => ViolationKind::LoweringMismatch,
        VmViolationKind::Unsupported => ViolationKind::Unsupported,
    }
}

/// Certifies that `vm` is a faithful, safe lowering of `prog`:
///
/// 1. every bytecode address is statically in-bounds and every
///    parallel-dispatchable loop's effect summary is race-free
///    (re-derived from the bytecode by `polymix_vm::certify`);
/// 2. the parallel-annotation census of the bytecode tree matches the
///    AST's (lowering neither invents nor drops dispatchable loops).
///
/// `kernel` labels the certificate; `deps_checked` counts bytecode
/// accesses and `pairs_checked` the cross-iteration conflict queries.
pub fn certify_lowering(kernel: &str, prog: &Program, vm: &VmProgram) -> Certificate {
    certify_lowering_from(kernel, prog, vm, &polymix_vm::certify(vm))
}

/// [`certify_lowering`] over an already-computed bytecode certificate,
/// for callers that also want the per-access proof detail (e.g. the
/// `verify --backend vm` audit, which reports proven-access counts).
pub fn certify_lowering_from(
    kernel: &str,
    prog: &Program,
    vm: &VmProgram,
    bytecode: &VmCertificate,
) -> Certificate {
    let (_, total) = bytecode.counts();
    let mut violations: Vec<Violation> = bytecode
        .violations
        .iter()
        .map(|v| Violation {
            kind: lift(v.kind),
            src: v.stmt.map(|s| format!("vm stmt {s}")).unwrap_or_default(),
            dst: String::new(),
            vector: Vec::new(),
            level: 0,
            loop_name: String::new(),
            detail: format!("bytecode: {}", v.detail),
            fix: "fix the lowering (or the transformation that produced this tree); \
                  the bytecode is what measurement cells execute"
                .to_string(),
        })
        .collect();

    let mut ast = [0usize; 4];
    ast_census(&prog.body, &mut ast);
    let mut lowered = [0usize; 4];
    vm_census(&vm.body, &mut lowered);
    if ast != lowered {
        violations.push(Violation {
            kind: ViolationKind::LoweringMismatch,
            src: String::new(),
            dst: String::new(),
            vector: Vec::new(),
            level: 0,
            loop_name: String::new(),
            detail: format!(
                "parallel-annotation census disagrees: AST \
                 doall/reduction/pipeline/wavefront = {ast:?}, bytecode = {lowered:?}"
            ),
            fix: "lowering must carry every parallel annotation through unchanged".to_string(),
        });
    }

    Certificate {
        kernel: kernel.to_string(),
        deps_checked: total,
        pairs_checked: bytecode.pairs_checked,
        violations,
    }
}
