//! Structured diagnostics: what the certifier found, where, and how to
//! fix it.

use polymix_deps::DepElem;
use polymix_ir::error::PolymixError;
use std::fmt;

/// What kind of certificate a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The transformed program executes the target of a dependence
    /// before (or at the same timestamp as) its source.
    IllegalOrder,
    /// A loop annotated [`polymix_ast::tree::Par::Doall`] carries a
    /// dependence.
    DoallCarriesDep,
    /// A carried dependence of a `Pipeline` loop is not covered by the
    /// `await_sources()` cone `{(-1, 0), (0, -1)}`: some dependent pair
    /// moves backward in the outer phase or leftward in the grid column.
    PipelineConeUncovered,
    /// A `Reduction` loop carries a dependence that is not an
    /// associative-commutative self-update.
    ReductionUnsafe,
    /// The accumulator of a reduction loop is also touched by a
    /// non-reduction access inside the loop body.
    ReductionAccumulatorAliased,
    /// A `Wavefront` pair of loops orders some dependent pair backward
    /// across (or races it within) a diagonal.
    WavefrontUnsafe,
    /// A tile-level task graph's counter/edge set fails to cover some
    /// re-derived inter-tile dependence: a dependent tile pair is
    /// reachable through no chain of graph edges, so the runtime could
    /// execute it in either order.
    TaskGraphUncovered,
    /// The emitted kernel source breaks the progress/poison protocol
    /// (missing await, raw store on progress, unguarded worker, ...).
    KernelLint,
    /// A bytecode address is not statically in-bounds over its compiled
    /// loop polyhedron (found by `polymix_vm::certify` during lowering
    /// translation validation).
    VmBounds,
    /// The lowered bytecode disagrees with the transformed AST it was
    /// lowered from (annotation census mismatch, structural invalidity).
    LoweringMismatch,
    /// The program shape is outside the certifier's model; nothing was
    /// proved for the affected dependence. Not an error by itself.
    Unsupported,
}

impl ViolationKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::IllegalOrder => "illegal-order",
            ViolationKind::DoallCarriesDep => "doall-carries-dep",
            ViolationKind::PipelineConeUncovered => "pipeline-cone-uncovered",
            ViolationKind::ReductionUnsafe => "reduction-unsafe",
            ViolationKind::ReductionAccumulatorAliased => "reduction-accumulator-aliased",
            ViolationKind::WavefrontUnsafe => "wavefront-unsafe",
            ViolationKind::TaskGraphUncovered => "taskgraph-uncovered",
            ViolationKind::KernelLint => "kernel-lint",
            ViolationKind::VmBounds => "vm-bounds",
            ViolationKind::LoweringMismatch => "lowering-mismatch",
            ViolationKind::Unsupported => "unsupported",
        }
    }

    /// Whether this kind fails certification (everything except
    /// [`ViolationKind::Unsupported`], which only limits coverage).
    pub fn is_error(self) -> bool {
        !matches!(self, ViolationKind::Unsupported)
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One certification failure, located at a statement pair and loop level.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Source statement name (empty for kernel-lint findings).
    pub src: String,
    /// Target statement name (empty for kernel-lint findings).
    pub dst: String,
    /// Dependence vector in the transformed loop space, one element per
    /// walked common level up to and including the failing one.
    pub vector: Vec<DepElem>,
    /// Loop level (0 = outermost common loop) the violation surfaced at.
    pub level: usize,
    /// Display name of the loop at `level` (empty when not applicable).
    pub loop_name: String,
    /// What exactly went wrong.
    pub detail: String,
    /// Suggested fix.
    pub fix: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if !self.src.is_empty() || !self.dst.is_empty() {
            write!(f, " {} -> {}", self.src, self.dst)?;
        }
        if !self.loop_name.is_empty() {
            write!(f, " at level {} ({})", self.level, self.loop_name)?;
        }
        if !self.vector.is_empty() {
            write!(f, " vector {:?}", self.vector)?;
        }
        write!(f, ": {}", self.detail)?;
        if !self.fix.is_empty() {
            write!(f, " (fix: {})", self.fix)?;
        }
        Ok(())
    }
}

/// The result of a certification run.
#[derive(Clone, Debug, Default)]
pub struct Certificate {
    /// Kernel / SCoP name.
    pub kernel: String,
    /// Dependence edges examined.
    pub deps_checked: usize,
    /// (dependence, occurrence pair) combinations walked.
    pub pairs_checked: usize,
    /// Everything found, deduplicated, errors first.
    pub violations: Vec<Violation>,
}

impl Certificate {
    /// Violations that fail certification.
    pub fn errors(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.kind.is_error())
    }

    /// True when every dependence was proved respected and every
    /// annotation proved safe (unsupported shapes allowed).
    pub fn is_certified(&self) -> bool {
        self.errors().next().is_none()
    }

    /// True when additionally no shape fell outside the model.
    pub fn is_complete(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fails with a [`PolymixError::Legality`] when not certified.
    pub fn into_result(self) -> Result<Certificate, PolymixError> {
        let n = self.errors().count();
        let first = self.errors().next().map(|v| v.to_string());
        let Some(first) = first else {
            return Ok(self);
        };
        let detail = if n == 1 {
            format!("static certification failed: {first}")
        } else {
            format!("static certification failed ({n} violations; first: {first})")
        };
        Err(PolymixError::Legality {
            kernel: self.kernel,
            detail,
        })
    }
}
