//! Certificate 4: coverage proof for tile-level task graphs.
//!
//! The runtime's `TileGraph` orders tiles by dependence *counters*: an
//! edge set, each node waiting for its in-edges. That edge set is
//! produced by the compiler (or by hand, for explicit DAGs), so it is
//! exactly the kind of final artifact this crate audits: given the tile
//! grid and the inter-tile dependence vectors, this pass re-derives the
//! required inter-tile dependence relation *from scratch* and proves the
//! counter graph covers it — every dependent tile pair `(t, t + d)` must
//! be connected by a chain of graph edges, or the runtime is free to run
//! the pair in either order and the certificate fails with
//! [`ViolationKind::TaskGraphUncovered`].
//!
//! Coverage is transitive reachability, not edge membership: a graph
//! that routes `(0, 0) → (1, 1)` through `(0, 1)` covers the `(1, 1)`
//! dependence without a direct edge (this is how the full-cone diagonal
//! graph covers narrow cones). Reachability is computed once with
//! per-node ancestor bitsets propagated in topological order — `O(V·E /
//! 64)` words, which caps the certifiable graph size
//! ([`MAX_CERT_TILES`]); larger graphs surface as
//! [`ViolationKind::Unsupported`] (coverage unproved, not disproved).
//! A cyclic edge set can order nothing and is rejected outright.

use crate::violation::{Certificate, Violation, ViolationKind};

/// Largest tile count the ancestor-bitset reachability will certify:
/// 2^13 nodes cost 2^13 × 2^13 / 8 = 8 MiB of bitsets. Tile graphs are
/// coarse by construction; bigger inputs are a coverage gap, not an
/// error.
pub const MAX_CERT_TILES: usize = 1 << 13;

fn violation(kind: ViolationKind, detail: String, fix: &str) -> Violation {
    Violation {
        kind,
        src: String::new(),
        dst: String::new(),
        vector: Vec::new(),
        level: 0,
        loop_name: "taskgraph".to_string(),
        detail,
        fix: fix.to_string(),
    }
}

/// Proves that `edges` (a counter graph over the `ni × nj` row-major
/// tile grid) covers every inter-tile dependence in `deps`: for each
/// tile `t` and vector `d` with `t + d` in the grid, `t` must reach
/// `t + d` through the edge set. Returns a [`Certificate`] named
/// `kernel`; malformed inputs (out-of-range endpoints, self-loops,
/// cycles) are themselves violations, and oversized graphs degrade to
/// [`ViolationKind::Unsupported`].
pub fn certify_tile_graph(
    kernel: &str,
    ni: usize,
    nj: usize,
    deps: &[(i64, i64)],
    edges: &[(usize, usize)],
) -> Certificate {
    let mut violations = Vec::new();
    let n = ni.saturating_mul(nj);
    let cert = |violations: Vec<Violation>, pairs: usize| Certificate {
        kernel: kernel.to_string(),
        deps_checked: deps.len(),
        pairs_checked: pairs,
        violations,
    };
    if n == 0 {
        return cert(violations, 0);
    }
    if n > MAX_CERT_TILES {
        violations.push(violation(
            ViolationKind::Unsupported,
            format!(
                "tile grid {ni} x {nj} has {n} tiles, over the {MAX_CERT_TILES} \
                 reachability budget; coverage not proved"
            ),
            "tile coarser, or certify a representative sub-grid",
        ));
        return cert(violations, 0);
    }

    // Adjacency + in-degrees, rejecting malformed edges up front.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(src, dst) in edges {
        if src >= n || dst >= n {
            violations.push(violation(
                ViolationKind::TaskGraphUncovered,
                format!("edge ({src}, {dst}) is out of range for the {n}-tile grid"),
                "regenerate the edge set from the tile grid actually executed",
            ));
            return cert(violations, 0);
        }
        if src == dst {
            violations.push(violation(
                ViolationKind::TaskGraphUncovered,
                format!("edge ({src}, {dst}) is a self-loop"),
                "a self-dependent counter never reaches zero; drop the edge",
            ));
            return cert(violations, 0);
        }
        succs[src].push(dst as u32);
        indeg[dst] += 1;
    }

    // Kahn topological order; a cycle means the graph orders nothing.
    let mut order = Vec::with_capacity(n);
    let mut remaining = indeg;
    let mut stack: Vec<u32> = (0..n as u32)
        .filter(|&k| remaining[k as usize] == 0)
        .collect();
    while let Some(k) = stack.pop() {
        order.push(k);
        for &s in &succs[k as usize] {
            remaining[s as usize] -= 1;
            if remaining[s as usize] == 0 {
                stack.push(s);
            }
        }
    }
    if order.len() != n {
        violations.push(violation(
            ViolationKind::TaskGraphUncovered,
            format!(
                "counter graph contains a dependence cycle ({} of {n} tiles \
                 unreachable from the roots); the runtime would deadlock",
                n - order.len()
            ),
            "regenerate the edge set; tile dependence vectors must be \
             lexicographically positive",
        ));
        return cert(violations, 0);
    }

    // Ancestor bitsets in topological order: anc[v] ⊇ anc[u] ∪ {u} for
    // every edge u → v, so bit `u` of anc[v] ⇔ u reaches v.
    let words = n.div_ceil(64);
    let mut anc: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    for &u in &order {
        let u = u as usize;
        for &s in &succs[u] {
            let v = s as usize;
            let (src_anc, dst_anc) = if u < v {
                let (a, b) = anc.split_at_mut(v);
                (&a[u], &mut b[0])
            } else {
                let (a, b) = anc.split_at_mut(u);
                (&b[0], &mut a[v])
            };
            for w in 0..words {
                dst_anc[w] |= src_anc[w];
            }
            dst_anc[u / 64] |= 1u64 << (u % 64);
        }
    }

    // The required relation, re-derived: every in-grid pair (t, t + d).
    let mut pairs = 0usize;
    let mut uncovered = 0usize;
    for &(di, dj) in deps {
        for ti in 0..ni as i64 {
            for tj in 0..nj as i64 {
                let (si, sj) = (ti + di, tj + dj);
                if si < 0 || si >= ni as i64 || sj < 0 || sj >= nj as i64 {
                    continue;
                }
                pairs += 1;
                let src = (ti as usize) * nj + tj as usize;
                let dst = (si as usize) * nj + sj as usize;
                if anc[dst][src / 64] & (1u64 << (src % 64)) == 0 {
                    uncovered += 1;
                    // One located witness per dependence vector keeps
                    // the certificate readable; the total is counted.
                    if uncovered <= deps.len() {
                        violations.push(Violation {
                            kind: ViolationKind::TaskGraphUncovered,
                            src: format!("tile ({ti}, {tj})"),
                            dst: format!("tile ({si}, {sj})"),
                            vector: Vec::new(),
                            level: 0,
                            loop_name: "taskgraph".to_string(),
                            detail: format!(
                                "dependence vector ({di}, {dj}): tile ({ti}, {tj}) does \
                                 not reach tile ({si}, {sj}) through the counter graph"
                            ),
                            fix: "add the missing edge (or a covering chain) to the \
                                  counter graph"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
    if uncovered > violations.len() {
        violations.push(violation(
            ViolationKind::TaskGraphUncovered,
            format!("{uncovered} dependent tile pairs uncovered in total"),
            "regenerate the counter graph from the dependence vectors",
        ));
    }
    cert(violations, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standard-cone edge set over an `ni × nj` row-major grid.
    fn cone_edges(ni: usize, nj: usize) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for i in 0..ni {
            for j in 0..nj {
                let k = i * nj + j;
                if i + 1 < ni {
                    edges.push((k, (i + 1) * nj + j));
                }
                if j + 1 < nj {
                    edges.push((k, i * nj + j + 1));
                }
            }
        }
        edges
    }

    #[test]
    fn standard_cone_certifies_clean() {
        let cert = certify_tile_graph("k", 6, 7, &[(1, 0), (0, 1)], &cone_edges(6, 7));
        assert!(cert.is_certified(), "{:?}", cert.violations);
        assert!(cert.is_complete());
        assert!(cert.pairs_checked > 0);
    }

    #[test]
    fn transitive_coverage_counts() {
        // (1, 1) has no direct edge anywhere, but (i,j) → (i,j+1) →
        // (i+1,j+1) covers it transitively.
        let cert = certify_tile_graph("k", 5, 5, &[(1, 0), (0, 1), (1, 1)], &cone_edges(5, 5));
        assert!(cert.is_certified(), "{:?}", cert.violations);
    }

    #[test]
    fn dropped_edge_is_rejected() {
        let mut edges = cone_edges(4, 4);
        // Drop (1,1) → (1,2): pairs depending on that chain lose
        // coverage.
        let victim = (1 * 4 + 1, 1 * 4 + 2);
        edges.retain(|&e| e != victim);
        let cert = certify_tile_graph("k", 4, 4, &[(1, 0), (0, 1)], &edges);
        assert!(!cert.is_certified());
        assert!(cert
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::TaskGraphUncovered
                && v.detail.contains("does not reach")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn uncovered_vector_is_rejected() {
        // The standard cone cannot cover the anti-diagonal (1, -1).
        let cert = certify_tile_graph("k", 4, 4, &[(1, -1)], &cone_edges(4, 4));
        assert!(!cert.is_certified());
    }

    #[test]
    fn cycle_and_malformed_edges_are_rejected() {
        let cert = certify_tile_graph("k", 2, 2, &[(1, 0)], &[(0, 1), (1, 0)]);
        assert!(cert
            .violations
            .iter()
            .any(|v| v.detail.contains("cycle")), "{:?}", cert.violations);
        let cert = certify_tile_graph("k", 2, 2, &[(1, 0)], &[(0, 9)]);
        assert!(!cert.is_certified());
        let cert = certify_tile_graph("k", 2, 2, &[(1, 0)], &[(1, 1)]);
        assert!(!cert.is_certified());
    }

    #[test]
    fn oversized_grid_degrades_to_unsupported() {
        let cert = certify_tile_graph("k", 1 << 7, 1 << 7, &[(1, 0)], &[]);
        assert!(cert.is_certified(), "unsupported is not an error");
        assert!(!cert.is_complete());
        assert!(cert
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::Unsupported));
    }

    #[test]
    fn empty_grid_is_trivially_certified() {
        let cert = certify_tile_graph("k", 0, 5, &[(1, 0)], &[]);
        assert!(cert.is_complete());
    }
}
