//! # polymix-verify — static legality & race certifier
//!
//! An independent end-of-pipeline auditor for transformed programs and
//! the parallel kernels emitted from them. Unlike the scheduler's
//! incremental legality bookkeeping ([`polymix_deps::DepState`]), which
//! tracks transformations as they are applied, this crate re-derives
//! everything from final artifacts only:
//!
//! 1. **Schedule legality** — the dependence relation is rebuilt from the
//!    SCoP ([`polymix_deps::build_podg`]) and every dependence is checked
//!    against the *transformed* AST: the statement instances'
//!    `iter_exprs` are inverted back into schedule rows and each
//!    (dependence, occurrence pair) is walked down the common loop nest
//!    with Fourier–Motzkin emptiness queries on violation polyhedra.
//! 2. **Parallel-annotation safety** — `doall` loops must carry nothing;
//!    `reduction` loops only associative-commutative self-updates with a
//!    non-aliased accumulator; `pipeline` carried dependences must be
//!    covered by the await cone `{(-1, 0), (0, -1)}`; `wavefront` pairs
//!    must order every dependence forward across diagonals and race-free
//!    within them.
//! 3. **Emitted-kernel audit** — a structural lint over the Rust source
//!    produced by `polymix-codegen`, checking the progress/poison
//!    protocol (see [`lint`]).
//!
//! Failures come back as structured [`Violation`]s (kind, statement
//! pair, dependence vector, loop level, suggested fix) collected in a
//! [`Certificate`]; [`certify`] turns an uncertified program into a
//! [`polymix_ir::PolymixError`] for pipeline use. The certifier never
//! panics on unexpected shapes: anything outside its model is reported
//! as [`ViolationKind::Unsupported`], which limits coverage but does not
//! fail certification.

mod occurrence;
mod walk;

pub mod lint;
pub mod taskgraph;
pub mod violation;
pub mod vmcert;

pub use lint::verify_source;
pub use taskgraph::certify_tile_graph;
pub use vmcert::{certify_lowering, certify_lowering_from};
pub use violation::{Certificate, Violation, ViolationKind};

/// Cache-admission gate for the optimization service: an artifact may
/// only enter a replay cache — where one bad entry would be served to
/// every future structurally identical request — if the transformed
/// program certifies (schedule legality + annotation safety) **and**
/// the emitted source passes the kernel protocol lint. Stricter than
/// the debug-build [`certify`] hook, which only sees the program.
pub fn certify_for_cache(
    prog: &Program,
    kernel: &str,
    emitted: &str,
) -> Result<Certificate, PolymixError> {
    let cert = verify_program(prog).into_result()?;
    lint::verify_source(kernel, emitted).into_result()?;
    Ok(cert)
}

use occurrence::{Occurrence, PStep};
use polymix_ast::tree::{Node, Par, Program};
use polymix_deps::build_podg;
use polymix_ir::{PolymixError, Scop};
use polymix_math::poly::Constraint;
use std::collections::HashSet;
use walk::PairWalk;

/// Re-derives the dependence relation of `prog.scop` and certifies that
/// the transformed loop tree (a) executes every dependence source before
/// its target and (b) carries only safe dependences at each parallel
/// annotation. Never panics; unmodeled shapes surface as
/// [`ViolationKind::Unsupported`].
pub fn verify_program(prog: &Program) -> Certificate {
    let scop = &prog.scop;
    let podg = build_podg(scop);
    let occs = occurrence::collect(prog, scop.n_params());
    let mut by_stmt: Vec<Vec<usize>> = vec![Vec::new(); scop.statements.len()];
    for (k, o) in occs.iter().enumerate() {
        if let Some(slot) = by_stmt.get_mut(o.stmt) {
            slot.push(k);
        }
    }
    let sample = &scop.default_params;
    let mut violations = Vec::new();
    let mut pairs = 0usize;
    for dep in &podg.deps {
        let (Some(ss), Some(ds)) = (by_stmt.get(dep.src.0), by_stmt.get(dep.dst.0)) else {
            continue;
        };
        for &si in ss {
            for &di in ds {
                pairs += 1;
                PairWalk::new(scop, dep, &occs[si], &occs[di], sample).run(&mut violations);
            }
        }
    }
    reduction_alias_pass(scop, &prog.body, &occs, &mut violations);
    dedup(&mut violations);
    Certificate {
        kernel: scop.name.clone(),
        deps_checked: podg.deps.len(),
        pairs_checked: pairs,
        violations,
    }
}

/// [`verify_program`] plus error conversion: the pipeline's mandatory
/// debug-mode certification stage.
pub fn certify(prog: &Program) -> Result<Certificate, PolymixError> {
    verify_program(prog).into_result()
}

/// Loop variables of innermost, stride-1 loops that certify as `doall`
/// — the eligible set for the emitter's explicit vectorization
/// post-pass (`EmitOptions::vect` in `polymix-codegen`).
///
/// Computed by *probing*: every candidate loop (innermost, stride 1,
/// annotated `Seq` or already `Doall`) is promoted to `Doall` in a
/// clone of the program and the full certifier re-runs on the clone.
/// Attribution has to be exact — emitted loop display names repeat
/// across sibling nests (two nests both containing a `c2`) — so the
/// probe also renames each candidate to a unique `vprobe<k>` marker and
/// excludes exactly the candidates named by resulting error violations.
/// The function stays conservative where attribution fails: a new error
/// the probe cannot pin on any candidate empties the whole set, and a
/// variable shared with an innermost loop under a non-doall annotation
/// (pipeline/wavefront/reduction) is dropped too, since the emitter's
/// structural gate alone cannot tell those loops apart by variable.
pub fn vectorizable_inner_vars(prog: &Program) -> Vec<usize> {
    fn innermost(n: &Node) -> bool {
        match n {
            Node::Seq(xs) => xs.iter().all(innermost),
            Node::Guard(_, b) => innermost(b),
            Node::Loop(_) => false,
            Node::Stmt(_) => true,
        }
    }
    let mut probe = prog.clone();
    let mut cand_vars: Vec<usize> = Vec::new(); // indexed by probe id
    let mut non_doall_inner: Vec<usize> = Vec::new();
    probe.body.visit_loops_mut(&mut |l| {
        if !(innermost(&l.body) && l.step == 1) {
            return;
        }
        match l.par {
            Par::Seq | Par::Doall => {
                l.name = format!("vprobe{}", cand_vars.len());
                l.par = Par::Doall;
                cand_vars.push(l.var);
            }
            _ => non_doall_inner.push(l.var),
        }
    });
    if cand_vars.is_empty() {
        return Vec::new();
    }
    type ErrKey = (ViolationKind, String, String, usize, String);
    fn err_keys(cert: &Certificate) -> HashSet<ErrKey> {
        cert.violations
            .iter()
            .filter(|v| v.kind.is_error())
            .map(|v| {
                (
                    v.kind,
                    v.src.clone(),
                    v.dst.clone(),
                    v.level,
                    v.loop_name.clone(),
                )
            })
            .collect()
    }
    let baseline = err_keys(&verify_program(prog));
    let probed = err_keys(&verify_program(&probe));
    let mut dirty = vec![false; cand_vars.len()];
    for key @ (_, _, _, _, name) in &probed {
        if let Some(k) = name
            .strip_prefix("vprobe")
            .and_then(|s| s.parse::<usize>().ok())
        {
            if k < dirty.len() {
                dirty[k] = true;
                continue;
            }
        }
        // An error on an untouched loop: pre-existing noise is fine, but
        // a *new* one the probe cannot attribute means nothing is safely
        // vectorizable.
        if !baseline.contains(key) {
            return Vec::new();
        }
    }
    let bad_vars: HashSet<usize> = cand_vars
        .iter()
        .enumerate()
        .filter(|&(k, _)| dirty[k])
        .map(|(_, &v)| v)
        .chain(non_doall_inner.iter().copied())
        .collect();
    let mut vars: Vec<usize> = cand_vars
        .iter()
        .copied()
        .filter(|v| !bad_vars.contains(v))
        .collect();
    vars.sort_unstable();
    vars.dedup();
    vars
}

/// Certifies that every loop variable in `vars` is in the eligible set
/// of [`vectorizable_inner_vars`] — the contract a caller must hold
/// before asking the emitter for an explicit-vect rewrite. A variable
/// outside the set (a dependence-carrying loop, a non-innermost or
/// strided loop, an ambiguous name) is a legality error, never a silent
/// skip.
pub fn certify_vect(prog: &Program, vars: &[usize]) -> Result<(), PolymixError> {
    let ok = vectorizable_inner_vars(prog);
    let bad: Vec<usize> = vars.iter().copied().filter(|v| !ok.contains(v)).collect();
    if bad.is_empty() {
        return Ok(());
    }
    Err(PolymixError::Legality {
        kernel: prog.scop.name.clone(),
        detail: format!(
            "vect post-pass requested for loop variable(s) {bad:?}, which are not \
             certified-doall innermost stride-1 loops (eligible: {ok:?})"
        ),
    })
}

/// Drops repeated findings (same kind, statement pair, level and loop)
/// and orders errors before [`ViolationKind::Unsupported`] notes.
fn dedup(violations: &mut Vec<Violation>) {
    let mut seen = HashSet::new();
    violations.retain(|v| {
        seen.insert((
            v.kind,
            v.src.clone(),
            v.dst.clone(),
            v.level,
            v.loop_name.clone(),
        ))
    });
    violations.sort_by_key(|v| !v.kind.is_error());
}

/// Coefficient of AST variable `v` in `row · (iter_exprs, params, 1)` —
/// the subscript row composed with the materialized inverse schedule.
fn subscript_coeff(row: &[i64], occ: &Occurrence, v: usize) -> i64 {
    row.iter()
        .zip(&occ.iter_exprs)
        .map(|(&c, e)| c * e.coeff_of(v))
        .sum()
}

/// The syntactic half of the reduction certificate: inside each
/// `reduction` loop, an accumulator array (one whose reduction-update
/// subscripts are invariant in the loop variable, i.e. whose self-update
/// is actually carried) must not be touched by any other access — the
/// emitter privatizes it per worker, so even same-iteration reads of the
/// global array would observe partial sums.
fn reduction_alias_pass(
    scop: &Scop,
    body: &Node,
    occs: &[Occurrence],
    out: &mut Vec<Violation>,
) {
    // Occurrences under a loop are those whose path contains its id.
    let under = |loop_id: usize| -> Vec<&Occurrence> {
        occs.iter()
            .filter(|o| {
                o.path
                    .iter()
                    .any(|s| matches!(s, PStep::Loop(l) if l.id == loop_id))
            })
            .collect()
    };
    // Reuse the occurrence walk's pre-order ids: re-number identically
    // (Seq and Loop nodes consume one id each, in the same order).
    fn number(
        node: &Node,
        depth: usize,
        next_id: &mut usize,
        out: &mut Vec<(usize, usize, String, usize)>,
    ) {
        match node {
            Node::Seq(xs) => {
                *next_id += 1;
                for x in xs {
                    number(x, depth, next_id, out);
                }
            }
            Node::Loop(l) => {
                let id = *next_id;
                *next_id += 1;
                if l.par == Par::Reduction {
                    out.push((id, l.var, l.name.clone(), depth));
                }
                number(&l.body, depth + 1, next_id, out);
            }
            Node::Guard(_, b) => number(b, depth, next_id, out),
            Node::Stmt(_) => {}
        }
    }
    let mut metas: Vec<(usize, usize, String, usize)> = Vec::new(); // (id, var, name, depth)
    let mut next_id = 0usize;
    number(body, 0, &mut next_id, &mut metas);
    for (loop_id, var, loop_name, depth) in metas {
        let members = under(loop_id);
        // Accumulators: reduction-update writes invariant in the loop var.
        let mut accums: Vec<(polymix_ir::ArrayId, String)> = Vec::new();
        for o in &members {
            let Some(stmt) = scop.statements.get(o.stmt) else {
                continue;
            };
            if !stmt.is_reduction_update() {
                continue;
            }
            let invariant = stmt
                .write
                .map
                .iter()
                .all(|row| subscript_coeff(row, o, var) == 0);
            if invariant && !accums.iter().any(|(a, _)| *a == stmt.write.array) {
                accums.push((stmt.write.array, stmt.name.clone()));
            }
        }
        if accums.is_empty() {
            continue;
        }
        for o in &members {
            let Some(stmt) = scop.statements.get(o.stmt) else {
                continue;
            };
            for (acc, is_write) in stmt.accesses() {
                let Some((_, owner)) = accums.iter().find(|(a, _)| *a == acc.array) else {
                    continue;
                };
                let is_self_pair = stmt.is_reduction_update()
                    && acc.array == stmt.write.array
                    && acc.map == stmt.write.map;
                if is_self_pair {
                    continue;
                }
                // Domain-aware refinement: a same-statement access that
                // provably never lands on the accumulator's cell (e.g.
                // trmm's `B[k][j]` read under `k < i`) observes only
                // state outside the privatized copy. Cross-iteration
                // collisions through such an access are dependences and
                // belong to the polyhedral certificates.
                if stmt.is_reduction_update()
                    && acc.array == stmt.write.array
                    && acc.map.len() == stmt.write.map.len()
                {
                    let mut coincide = stmt.domain.clone();
                    for (r1, r2) in acc.map.iter().zip(&stmt.write.map) {
                        let diff: Vec<i64> = r1.iter().zip(r2).map(|(a, b)| a - b).collect();
                        coincide.add(Constraint::eq(diff));
                    }
                    if coincide.is_empty() {
                        continue;
                    }
                }
                let arr = scop
                    .arrays
                    .get(acc.array.0)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| format!("arr{}", acc.array.0));
                out.push(Violation {
                    kind: ViolationKind::ReductionAccumulatorAliased,
                    src: owner.clone(),
                    dst: stmt.name.clone(),
                    vector: Vec::new(),
                    level: depth,
                    loop_name: loop_name.clone(),
                    detail: format!(
                        "accumulator `{arr}` of reduction loop `{loop_name}` is also {} \
                         by `{}` outside the self-update",
                        if is_write { "written" } else { "read" },
                        stmt.name
                    ),
                    fix: "privatization would expose partial sums; demote the loop to \
                          sequential or split the conflicting statement out of it"
                        .to_string(),
                });
            }
        }
    }
}
