//! Certificate 3: structural audit of emitted kernel source.
//!
//! The Rust emitter (`polymix-codegen`) labels every parallel construct
//! with a `// <kind> region N ...` comment and follows a fixed
//! progress/poison protocol. This lint re-checks that protocol from the
//! *source text alone* — independent of the emitter's internal state —
//! so a cached or hand-edited kernel can be audited before it is
//! compiled and run:
//!
//! * every worker closure runs inside the `contained(...)` unwind
//!   boundary (`sc.spawn` must never take a bare closure);
//! * progress cells are published monotonically (`fetch_max`), never
//!   raw-stored (a plain `store` could travel backwards past a flooded
//!   `POISON` value);
//! * `.fetch_add` is reserved for the dynamic-schedule `cursor`;
//! * pipeline/wavefront regions that publish progress must also await
//!   it, gate on `POISONED` before the first await, bail out of the
//!   worker when an await fails, and (pipelines) await the left
//!   neighbor;
//! * doall regions are progress-free by construction;
//! * reduction regions either privatize (`reduced [...]`) or fall back
//!   to sequential code, stated in the region header;
//! * vect regions (the explicit-vectorization post-pass, nested inside
//!   the construct that owns the loop) declare doall certification,
//!   stop a full lane group before the bound, advance by the lane
//!   width, and carry a scalar remainder loop plus an end marker.
//!
//! Findings use [`ViolationKind::KernelLint`] with the region label in
//! `loop_name`. The lint is purely syntactic: it cannot prove the
//! protocol *sufficient* (that is certificates 1–2 plus the dynamic
//! order checker), only that no emitted or edited kernel silently drops
//! a protocol obligation.

use crate::violation::{Certificate, Violation, ViolationKind};

/// One labeled parallel region of the emitted source.
struct Region<'a> {
    /// Region label, e.g. `pipeline region 2 (fused siblings)`.
    label: String,
    /// Construct kind: `doall` / `reduction` / `pipeline` / `wavefront`.
    kind: &'a str,
    /// Lines from the marker (inclusive) to the next marker (exclusive).
    lines: Vec<&'a str>,
}

const KINDS: [&str; 5] = ["doall", "reduction", "pipeline", "wavefront", "taskgraph"];

/// Parses `// <kind> region N ...` markers; returns the marker's kind
/// and label when the line is one.
fn marker(line: &str) -> Option<(&'static str, String)> {
    let t = line.trim();
    let body = t.strip_prefix("// ")?;
    for k in KINDS {
        if let Some(rest) = body.strip_prefix(k) {
            if rest.trim_start().starts_with("region") {
                return Some((k, body.trim().to_string()));
            }
        }
    }
    None
}

fn split_regions(source: &str) -> Vec<Region<'_>> {
    let mut out: Vec<Region<'_>> = Vec::new();
    for line in source.lines() {
        if let Some((kind, label)) = marker(line) {
            out.push(Region {
                label,
                kind,
                lines: vec![line],
            });
        } else if let Some(r) = out.last_mut() {
            r.lines.push(line);
        }
    }
    out
}

/// One explicit-vectorization region of the emitted source, delimited
/// `// vect region N (...)` … `// vect end N`.
///
/// Vect markers are deliberately **not** one of the region-splitting
/// [`KINDS`]: a vect rewrite lives *inside* a doall/pipeline/taskgraph
/// region, and splitting on it would truncate the enclosing region's
/// line span mid-body (e.g. a taskgraph region's trailing `fetch_sub`
/// lines would fall out of its audit and falsely fire "never decrements
/// successor counters"). They are collected separately as nested spans.
struct VectRegion<'a> {
    /// Marker label, e.g. `vect region 0 (width 4, doall-certified)`.
    label: String,
    /// Lines from the open marker to the matching end marker, or up to
    /// end-of-source when unterminated.
    lines: Vec<&'a str>,
    /// Whether the matching `// vect end N` marker was found.
    terminated: bool,
}

fn collect_vect_regions(source: &str) -> Vec<VectRegion<'_>> {
    let mut out = Vec::new();
    let mut open: Option<(VectRegion<'_>, String)> = None;
    for line in source.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("// vect region ") {
            let n = rest.split_whitespace().next().unwrap_or("");
            if let Some((r, _)) = open.take() {
                out.push(r); // previous region never closed
            }
            open = Some((
                VectRegion {
                    label: format!("vect region {rest}"),
                    lines: vec![line],
                    terminated: false,
                },
                format!("// vect end {n}"),
            ));
            continue;
        }
        if let Some((mut r, end)) = open.take() {
            r.lines.push(line);
            if t == end {
                r.terminated = true;
                out.push(r);
            } else {
                open = Some((r, end));
            }
        }
    }
    if let Some((r, _)) = open {
        out.push(r);
    }
    out
}

/// Checks the obligations of one explicit-vectorization region: the
/// rewrite may only be applied to certified-doall loops, the group loop
/// must stop a full lane group before the bound and advance by the full
/// lane width, and a scalar remainder loop must cover the tail.
fn lint_vect_region(region: &VectRegion<'_>, violations: &mut Vec<Violation>) {
    let label = region.label.as_str();
    if !region.terminated {
        violations.push(lint_violation(
            label,
            "vect region has no matching `// vect end` marker".to_string(),
            "an unterminated vect span cannot be audited as a unit; re-emit the \
             region with its end marker",
        ));
        return;
    }
    let text = region.lines.join("\n");
    if !label.contains("doall-certified") {
        violations.push(lint_violation(
            label,
            "vect region does not declare doall certification".to_string(),
            "the explicit-vect rewrite is only legal on loops the certifier proved \
             dependence-free; the marker must carry `doall-certified`",
        ));
    }
    if !text.contains("+ 3 <=") {
        violations.push(lint_violation(
            label,
            "vect group loop does not stop a full lane group before the bound".to_string(),
            "the grouped loop must test `v + (W-1) <= hi` so no lane reads past the \
             iteration space; re-emit the region",
        ));
    }
    if !text.contains("+= 4;") {
        violations.push(lint_violation(
            label,
            "vect group loop does not advance by the full lane width".to_string(),
            "the grouped loop must step by W after executing W lanes or lanes repeat; \
             re-emit the region",
        ));
    }
    if !text.contains("// vect remainder") {
        violations.push(lint_violation(
            label,
            "vect region has no scalar remainder loop".to_string(),
            "trip counts not divisible by the lane width drop their tail iterations \
             without the remainder loop; re-emit the region",
        ));
    }
}

fn lint_violation(label: &str, detail: String, fix: &str) -> Violation {
    Violation {
        kind: ViolationKind::KernelLint,
        src: String::new(),
        dst: String::new(),
        vector: Vec::new(),
        level: 0,
        loop_name: label.to_string(),
        detail,
        fix: fix.to_string(),
    }
}

/// Audits emitted kernel source; `kernel` names the [`Certificate`].
pub fn verify_source(kernel: &str, source: &str) -> Certificate {
    let mut violations = Vec::new();

    // Global invariants, independent of region structure.
    for (n, line) in source.lines().enumerate() {
        let ln = n + 1;
        if line.contains("sc.spawn") && !line.contains("contained(") {
            violations.push(lint_violation(
                "",
                format!(
                    "line {ln}: worker spawned outside the `contained` unwind boundary"
                ),
                "a panic in a bare closure aborts the scope instead of poisoning the \
                 progress grid; wrap the closure in contained(...)",
            ));
        }
        if line.contains("progress[") && line.contains(".store(") {
            violations.push(lint_violation(
                "",
                format!("line {ln}: raw store on a progress cell"),
                "publishes must be monotonic fetch_max so they can never move a cell \
                 backwards past a flooded POISON value",
            ));
        }
        if line.contains(".fetch_add(") && !line.contains("cursor") {
            violations.push(lint_violation(
                "",
                format!("line {ln}: fetch_add on something other than the work cursor"),
                "only the dynamic-schedule cursor is incremented; progress cells use \
                 fetch_max",
            ));
        }
        if line.contains(".fetch_sub(") && !line.contains("pending") {
            violations.push(lint_violation(
                "",
                format!(
                    "line {ln}: fetch_sub on something other than a taskgraph pending \
                     counter"
                ),
                "only the task graph's dependence counters are decremented; progress \
                 cells are monotonic and use fetch_max",
            ));
        }
    }
    if source.contains("await_progress(&") && !source.contains("static POISONED: AtomicBool") {
        violations.push(lint_violation(
            "",
            "kernel awaits progress but declares no POISONED flag".to_string(),
            "without the poison flag a waiter whose neighbor died spins forever; \
             emit the static POISONED declaration and store it on panic",
        ));
    }
    if source.contains("await_zero(&") && !source.contains("static POISONED: AtomicBool") {
        violations.push(lint_violation(
            "",
            "kernel awaits dependence counters but declares no POISONED flag".to_string(),
            "without the poison flag a waiter whose predecessor died spins forever on \
             a counter that will never reach zero",
        ));
    }

    for region in split_regions(source) {
        let text = region.lines.join("\n");
        let label = region.label.as_str();
        match region.kind {
            "doall" => {
                if text.contains("progress[") {
                    violations.push(lint_violation(
                        label,
                        "doall region touches the progress grid".to_string(),
                        "doall iterations are independent by certificate; progress \
                         cells indicate a mislabeled pipeline",
                    ));
                }
            }
            "reduction" => {
                if !label.contains("sequential fallback") && !label.contains("reduced [") {
                    violations.push(lint_violation(
                        label,
                        "reduction region neither privatizes an accumulator nor \
                         declares the sequential fallback"
                            .to_string(),
                        "shared-accumulator updates without privatization race; \
                         re-emit the region",
                    ));
                }
            }
            "pipeline" | "wavefront" => {
                lint_sync_region(&region, &text, &mut violations);
            }
            "taskgraph" => {
                lint_taskgraph_region(&region, &text, &mut violations);
            }
            _ => {}
        }
    }

    for vect in collect_vect_regions(source) {
        lint_vect_region(&vect, &mut violations);
    }

    violations.sort_by_key(|v| !v.kind.is_error());
    Certificate {
        kernel: kernel.to_string(),
        deps_checked: 0,
        pairs_checked: 0,
        violations,
    }
}

/// Checks the publish/await/poison obligations of one pipeline or
/// wavefront region.
fn lint_sync_region(region: &Region<'_>, text: &str, violations: &mut Vec<Violation>) {
    let label = region.label.as_str();
    let publishes = text.contains(".fetch_max(");
    let awaits = text.contains("await_progress(");
    if region.kind == "pipeline" {
        if publishes && !awaits {
            violations.push(lint_violation(
                label,
                "pipeline region publishes progress that no worker awaits".to_string(),
                "without a matching await the dependence the pipeline exists for is \
                 unsynchronized; re-emit the region",
            ));
        }
        if awaits && !text.contains("progress[t - 1]") {
            violations.push(lint_violation(
                label,
                "pipeline region never awaits its left neighbor".to_string(),
                "the await cone requires source (i-1, j): the left-neighbor await \
                 `progress[t - 1]` must be present",
            ));
        }
    }
    if awaits {
        let first_await = text.find("await_progress(").unwrap_or(0);
        let gate = text.find("POISONED.load");
        if !matches!(gate, Some(g) if g < first_await) {
            violations.push(lint_violation(
                label,
                "no POISONED gate before the first await".to_string(),
                "a worker entering its await loop after a sibling died must observe \
                 the poison flag first or it can publish past a flooded cell",
            ));
        }
        for line in &region.lines {
            if line.contains("!await_progress(") && !line.contains("{ return false; }") {
                violations.push(lint_violation(
                    label,
                    format!(
                        "await does not abandon the worker on failure: `{}`",
                        line.trim()
                    ),
                    "a failed await means the grid is poisoned; the worker must \
                     return immediately instead of running on stale data",
                ));
            }
        }
    }
}

/// Checks the counter-graph obligations of one taskgraph region: tiles
/// are claimed from the topological cursor, every claim awaits its
/// dependence counter (POISON-aware, gated on the POISONED flag, bailing
/// out of the worker on failure), and completions decrement successor
/// counters.
fn lint_taskgraph_region(region: &Region<'_>, text: &str, violations: &mut Vec<Violation>) {
    let label = region.label.as_str();
    if !text.contains("cursor") || !text.contains(".fetch_add(") {
        violations.push(lint_violation(
            label,
            "taskgraph region never claims tiles from the topological cursor".to_string(),
            "tiles are claimed with cursor.fetch_add in topological order — the order \
             that makes counter waits deadlock-free; re-emit the region",
        ));
    }
    let awaits = text.contains("await_zero(&pending[");
    if !awaits {
        violations.push(lint_violation(
            label,
            "taskgraph region never awaits a tile's dependence counter".to_string(),
            "a claimed tile must await_zero its pending counter before running; \
             without it the inter-tile dependences are unsynchronized",
        ));
    }
    if !text.contains(".fetch_sub(1") {
        violations.push(lint_violation(
            label,
            "taskgraph region never decrements successor counters".to_string(),
            "a completed tile must fetch_sub each successor's pending counter or \
             every successor waits forever",
        ));
    }
    if awaits {
        let first_await = text.find("await_zero(&pending[").unwrap_or(0);
        let gate = text.find("POISONED.load");
        if !matches!(gate, Some(g) if g < first_await) {
            violations.push(lint_violation(
                label,
                "no POISONED gate before the first counter await".to_string(),
                "a worker claiming tiles after a sibling died must observe the poison \
                 flag before waiting on a counter that will never drain",
            ));
        }
        for line in &region.lines {
            if line.contains("!await_zero(") && !line.contains("{ return false; }") {
                violations.push(lint_violation(
                    label,
                    format!(
                        "counter await does not abandon the worker on failure: `{}`",
                        line.trim()
                    ),
                    "a failed await_zero means the graph is poisoned; the worker must \
                     return immediately instead of running the tile",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
static POISONED: AtomicBool = AtomicBool::new(false);
#[inline] fn await_progress(cell: &AtomicI64, target: i64, own: &AtomicI64, own_done: i64) -> bool {
    loop { if POISONED.load(Ordering::Acquire) { return false; } }
}
// doall region 0 (dynamic schedule)
sc.spawn(move || contained(&[], || unsafe {
let off = cursor.0.fetch_add(grain, Ordering::Relaxed);
}));
// pipeline region 1
sc.spawn(move || contained(progress, || unsafe {
if POISONED.load(Ordering::Acquire) { return false; }
if t > 0 && !await_progress(&progress[t - 1].0, v, &progress[t].0, v - 1) { return false; }
if t + 1 < nthr && !await_progress(&progress[t + 1].0, v - 1, &progress[t].0, v - 1) { return false; }
progress[t].0.fetch_max(v, Ordering::AcqRel);
}));
// reduction region 2 (reduced [0], owner-indexed [])
sc.spawn(move || contained(&[], || unsafe {
}));
// taskgraph region 3 (tiles 4 x 3, cone [(1, 0), (0, 1)])
#[inline] fn await_zero(cell: &AtomicI64) -> bool {
    loop { if POISONED.load(Ordering::Acquire) { return false; } }
}
sc.spawn(move || contained(&[], || unsafe {
loop {
let k = cursor.0.fetch_add(1, Ordering::Relaxed) as usize;
if k >= n_tiles { return true; }
if !await_zero(&pending[k]) { return false; }
// vect region 4 (width 4, doall-certified)
{
let mut v_c1 = lo; let v_c1_hi = hi;
while v_c1 + 3 <= v_c1_hi {
{ let v_c1 = v_c1; body(v_c1); }
{ let v_c1 = v_c1 + 1; body(v_c1); }
{ let v_c1 = v_c1 + 2; body(v_c1); }
{ let v_c1 = v_c1 + 3; body(v_c1); }
v_c1 += 4;
}
// vect remainder
while v_c1 <= v_c1_hi { body(v_c1); v_c1 += 1; }
}
// vect end 4
for &s in succs[k] { pending[s].fetch_sub(1, Ordering::AcqRel); }
}
}));
"#;

    #[test]
    fn well_formed_kernel_is_clean() {
        let cert = verify_source("k", GOOD);
        assert!(cert.is_complete(), "{:?}", cert.violations);
    }

    #[test]
    fn raw_store_and_bare_spawn_flagged() {
        let bad = GOOD
            .replace(
                "progress[t].0.fetch_max(v, Ordering::AcqRel);",
                "progress[t].0.store(v, Ordering::Release);",
            )
            .replace(
                "sc.spawn(move || contained(&[], || unsafe {",
                "sc.spawn(move || unsafe {",
            );
        let cert = verify_source("k", &bad);
        assert!(cert
            .violations
            .iter()
            .any(|v| v.detail.contains("raw store")));
        assert!(cert
            .violations
            .iter()
            .any(|v| v.detail.contains("unwind boundary")));
    }

    #[test]
    fn taskgraph_dropped_decrement_flagged() {
        let bad = GOOD.replace(
            "for &s in succs[k] { pending[s].fetch_sub(1, Ordering::AcqRel); }\n",
            "",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("never decrements successor counters")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn taskgraph_unguarded_await_flagged() {
        let bad = GOOD.replace(
            "if !await_zero(&pending[k]) { return false; }",
            "if !await_zero(&pending[k]) { continue; }",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("does not abandon the worker")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn stray_fetch_sub_flagged_globally() {
        let bad = GOOD.replace(
            "progress[t].0.fetch_max(v, Ordering::AcqRel);",
            "progress[t].0.fetch_sub(1, Ordering::AcqRel);",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("fetch_sub on something other")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn vect_region_nesting_does_not_truncate_enclosing_region() {
        // The vect span in GOOD sits inside the taskgraph region *before*
        // its successor decrement; the taskgraph audit must still see the
        // fetch_sub line past the nested markers.
        let cert = verify_source("k", GOOD);
        assert!(
            !cert
                .violations
                .iter()
                .any(|v| v.detail.contains("never decrements")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn vect_missing_remainder_flagged() {
        let bad = GOOD.replace(
            "// vect remainder\nwhile v_c1 <= v_c1_hi { body(v_c1); v_c1 += 1; }\n",
            "",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("no scalar remainder loop")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn vect_uncertified_label_flagged() {
        let bad = GOOD.replace(
            "// vect region 4 (width 4, doall-certified)",
            "// vect region 4 (width 4)",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("does not declare doall certification")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn vect_partial_group_bound_flagged() {
        let bad = GOOD.replace("while v_c1 + 3 <= v_c1_hi {", "while v_c1 <= v_c1_hi + 0 {");
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("full lane group before the bound")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn vect_unterminated_region_flagged() {
        let bad = GOOD.replace("// vect end 4\n", "");
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("no matching `// vect end`")),
            "{:?}",
            cert.violations
        );
    }

    #[test]
    fn dropped_await_flagged() {
        let bad = GOOD.replace(
            "if t > 0 && !await_progress(&progress[t - 1].0, v, &progress[t].0, v - 1) { return false; }\n",
            "",
        );
        let cert = verify_source("k", &bad);
        assert!(
            cert.violations
                .iter()
                .any(|v| v.detail.contains("left neighbor")),
            "{:?}",
            cert.violations
        );
    }
}
