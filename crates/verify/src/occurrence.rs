//! Flattening the transformed AST into per-statement *occurrences*.
//!
//! An occurrence is one textual copy of a statement (unrolling and
//! distribution create several) together with its root path — the exact
//! sequence of `Seq` branches, loops and guards above it — and the
//! statement's `iter_exprs`, which express the *original* iterators as
//! affine functions of the AST loop variables. Inverting that system
//! recovers each AST variable as an affine function of the original
//! iteration vector, i.e. the row of the composed schedule the loop
//! materializes. Variables that cannot be recovered (tile controllers,
//! whose value is a floor of a point variable) stay unsolved and are
//! handled conservatively by the walker.

use polymix_ast::tree::{LinExpr, Node, Par, Program};
use std::collections::HashMap;

/// Identity and shape of one loop on a root path.
#[derive(Clone, Debug)]
pub(crate) struct LoopMeta {
    /// Pre-order id: two occurrences are under the same loop iff the ids
    /// at the same path position match.
    pub id: usize,
    /// AST variable the loop binds.
    pub var: usize,
    /// Display name.
    pub name: String,
    /// Step (strictly positive).
    pub step: i64,
    /// Parallel annotation.
    pub par: Par,
    /// AST variables mentioned by the lower bound — a point loop clamped
    /// by a tile controller mentions the controller here, which is how
    /// the walker picks the proxy row for an unsolvable tile level.
    pub lo_vars: Vec<usize>,
}

/// One step of a root path.
#[derive(Clone, Debug)]
pub(crate) enum PStep {
    /// `child`-th child of the `Seq` node `id`; `loop_sib` is the
    /// position among the Seq's *loop* children when this child is a
    /// loop (the emitter's fused-sibling phase index).
    Seq {
        id: usize,
        child: usize,
        loop_sib: Option<usize>,
    },
    Loop(LoopMeta),
    /// Guard: the subtree runs iff every expression is `>= 0`.
    Guard { exprs: Vec<LinExpr> },
}

/// One textual occurrence of a statement in the transformed program.
#[derive(Clone, Debug)]
pub(crate) struct Occurrence {
    /// Index into `scop.statements`.
    pub stmt: usize,
    pub path: Vec<PStep>,
    pub iter_exprs: Vec<LinExpr>,
    /// AST var -> statement-local affine row `[x_0..x_{dim-1} | params | 1]`
    /// recovering the variable's value from the original iteration
    /// vector. Unsolvable vars (tile controllers) are absent.
    pub solved: HashMap<usize, Vec<i64>>,
}

/// Collects every statement occurrence of the program body.
pub(crate) fn collect(prog: &Program, n_params: usize) -> Vec<Occurrence> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    let mut next_id = 0usize;
    walk(&prog.body, &mut path, &mut next_id, &mut out);
    for occ in &mut out {
        occ.solved = solve(&occ.iter_exprs, n_params);
    }
    out
}

fn walk(node: &Node, path: &mut Vec<PStep>, next_id: &mut usize, out: &mut Vec<Occurrence>) {
    match node {
        Node::Seq(xs) => {
            let id = *next_id;
            *next_id += 1;
            let mut sib = 0usize;
            for (child, x) in xs.iter().enumerate() {
                let loop_sib = if matches!(x, Node::Loop(_)) {
                    let s = sib;
                    sib += 1;
                    Some(s)
                } else {
                    None
                };
                path.push(PStep::Seq {
                    id,
                    child,
                    loop_sib,
                });
                walk(x, path, next_id, out);
                path.pop();
            }
        }
        Node::Loop(l) => {
            let id = *next_id;
            *next_id += 1;
            let mut lo_vars: Vec<usize> = Vec::new();
            for be in &l.lo.exprs {
                for &(v, c) in &be.expr.var_coeffs {
                    if c != 0 && !lo_vars.contains(&v) {
                        lo_vars.push(v);
                    }
                }
            }
            path.push(PStep::Loop(LoopMeta {
                id,
                var: l.var,
                name: l.name.clone(),
                step: l.step.max(1),
                par: l.par,
                lo_vars,
            }));
            walk(&l.body, path, next_id, out);
            path.pop();
        }
        Node::Guard(exprs, body) => {
            path.push(PStep::Guard {
                exprs: exprs.clone(),
            });
            walk(body, path, next_id, out);
            path.pop();
        }
        Node::Stmt(s) => {
            out.push(Occurrence {
                stmt: s.stmt_idx,
                path: path.clone(),
                iter_exprs: s.iter_exprs.clone(),
                solved: HashMap::new(),
            });
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn normalize(row: &mut (Vec<i64>, Vec<i64>)) {
    let mut g = 0i64;
    for &x in row.0.iter().chain(row.1.iter()) {
        g = gcd(g, x);
    }
    if g > 1 {
        for x in row.0.iter_mut().chain(row.1.iter_mut()) {
            *x /= g;
        }
    }
}

/// Inverts `iter_exprs` (original iterators as affine functions of the
/// AST vars) by fraction-free Gauss-Jordan elimination, returning each
/// AST var as an integer affine row over `[x | params | 1]` where
/// possible.
fn solve(iter_exprs: &[LinExpr], n_params: usize) -> HashMap<usize, Vec<i64>> {
    let dim = iter_exprs.len();
    let mut vars: Vec<usize> = Vec::new();
    for e in iter_exprs {
        for &(v, c) in &e.var_coeffs {
            if c != 0 && !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let nv = vars.len();
    let w = dim + n_params + 1;
    // One equation per original iterator m:
    //   sum_v a_mv * v  =  x_m - params_m - c_m
    let mut rows: Vec<(Vec<i64>, Vec<i64>)> = Vec::with_capacity(dim);
    for (m, e) in iter_exprs.iter().enumerate() {
        let mut a = vec![0i64; nv];
        for &(v, c) in &e.var_coeffs {
            if let Some(j) = vars.iter().position(|&x| x == v) {
                a[j] += c;
            }
        }
        let mut r = vec![0i64; w];
        r[m] += 1;
        for &(p, c) in &e.param_coeffs {
            if p < n_params {
                r[dim + p] -= c;
            }
        }
        r[w - 1] -= e.c;
        rows.push((a, r));
    }
    let mut pivot_of: Vec<Option<usize>> = vec![None; nv];
    let mut used = vec![false; rows.len()];
    for col in 0..nv {
        let Some(pr) = (0..rows.len()).find(|&i| !used[i] && rows[i].0[col] != 0) else {
            continue;
        };
        used[pr] = true;
        pivot_of[col] = Some(pr);
        let (pa, prh) = rows[pr].clone();
        let p = pa[col];
        for i in 0..rows.len() {
            if i == pr || rows[i].0[col] == 0 {
                continue;
            }
            let c = rows[i].0[col];
            for j in 0..nv {
                rows[i].0[j] = rows[i].0[j] * p - pa[j] * c;
            }
            for j in 0..w {
                rows[i].1[j] = rows[i].1[j] * p - prh[j] * c;
            }
            normalize(&mut rows[i]);
        }
    }
    let mut out = HashMap::new();
    for (col, &v) in vars.iter().enumerate() {
        let Some(pr) = pivot_of[col] else { continue };
        let (a, r) = &rows[pr];
        let p = a[col];
        // Determined only when no free column leaks into the pivot row
        // and the solution is integral.
        if p == 0 || a.iter().enumerate().any(|(j, &c)| j != col && c != 0) {
            continue;
        }
        if r.iter().any(|&x| x % p != 0) {
            continue;
        }
        out.insert(v, r.iter().map(|&x| x / p).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::tree::LinExpr;

    #[test]
    fn solve_inverts_skew_and_unroll_shifts() {
        // x0 = u, x1 = w - 2u (skew by 2), so u = x0, w = x1 + 2*x0.
        let e0 = LinExpr::var(7);
        let mut e1 = LinExpr::var(9);
        e1 = e1.add_scaled(&LinExpr::var(7), -2);
        let solved = solve(&[e0, e1], 1);
        assert_eq!(solved.get(&7), Some(&vec![1, 0, 0, 0]));
        assert_eq!(solved.get(&9), Some(&vec![2, 1, 0, 0]));
        // Unroll replica: x0 = v + 3  =>  v = x0 - 3.
        let e = LinExpr::var(4).plus(3);
        let solved = solve(&[e], 0);
        assert_eq!(solved.get(&4), Some(&vec![1, -3]));
    }

    #[test]
    fn tile_controllers_stay_unsolved() {
        // x0 = v only; tile var 5 never appears => absent.
        let solved = solve(&[LinExpr::var(2)], 0);
        assert!(solved.contains_key(&2));
        assert!(!solved.contains_key(&5));
    }
}
