//! A set-associative LRU cache model.

/// Geometry of one cache (or TLB: set `line_bytes` to the page size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set); use `usize::MAX` for fully
    /// associative.
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KB, 8-way, 64 B-line L1.
    pub fn l1_nehalem() -> CacheConfig {
        CacheConfig {
            line_bytes: 64,
            capacity_bytes: 32 * 1024,
            ways: 8,
        }
    }

    /// A 256 KB, 8-way, 64 B-line L2.
    pub fn l2_nehalem() -> CacheConfig {
        CacheConfig {
            line_bytes: 64,
            capacity_bytes: 256 * 1024,
            ways: 8,
        }
    }

    /// A 32 KB, 8-way, 128 B-line Power7-style L1.
    pub fn l1_power7() -> CacheConfig {
        CacheConfig {
            line_bytes: 128,
            capacity_bytes: 32 * 1024,
            ways: 8,
        }
    }

    /// A 64-entry, 4-way, 4 KB-page DTLB.
    pub fn dtlb() -> CacheConfig {
        CacheConfig {
            line_bytes: 4096,
            capacity_bytes: 64 * 4096,
            ways: 4,
        }
    }

    fn n_sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        let ways = self.ways.min(lines.max(1));
        (lines / ways).max(1)
    }
}

/// Hit/miss counters, with misses split into compulsory (first touch of
/// a line) and capacity/conflict (re-fetch of an evicted line).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (cold + capacity + conflict).
    pub misses: u64,
    /// First-touch (compulsory) misses.
    pub cold_misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 for an empty trace.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Capacity/conflict misses (total minus compulsory): the part loop
    /// transformations can actually remove.
    pub fn replacement_misses(&self) -> u64 {
        self.misses - self.cold_misses
    }
}

/// A set-associative cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_use) per way
    clock: u64,
    stats: CacheStats,
    /// Every line ever touched (for compulsory-miss classification).
    seen: std::collections::HashSet<u64>,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let n = config.n_sets();
        Cache {
            config,
            sets: vec![Vec::new(); n],
            clock: 0,
            stats: CacheStats::default(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Touches the byte address; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let n_sets = self.sets.len() as u64;
        let set_idx = (line % n_sets) as usize;
        let tag = line / n_sets;
        let ways = self
            .config
            .ways
            .min((self.config.capacity_bytes / self.config.line_bytes).max(1));
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.clock;
            return true;
        }
        self.stats.misses += 1;
        if self.seen.insert(line) {
            self.stats.cold_misses += 1;
        }
        if set.len() >= ways {
            // Evict LRU (the set is non-empty here: ways >= 1).
            if let Some(lru) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
            {
                set.swap_remove(lru);
            }
        }
        set.push((tag, self.clock));
        false
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way => 2 sets.
        Cache::new(CacheConfig {
            line_bytes: 64,
            capacity_bytes: 256,
            ways: 2,
        })
    }

    #[test]
    fn cold_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets): third insert evicts LRU.
        c.access(0); // line 0, set 0
        c.access(2 * 64); // line 2, set 0
        c.access(0); // refresh line 0
        c.access(4 * 64); // line 4, set 0: evicts line 2 (LRU)
        assert!(c.access(0), "line 0 must have survived");
        assert!(!c.access(2 * 64), "line 2 must have been evicted");
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(i * 64);
        }
        assert_eq!(c.stats().misses, 100);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = tiny();
        for _pass in 0..10 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        // 4 lines fit exactly; after the cold pass everything hits.
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn miss_ratio_math() {
        let s = CacheStats {
            accesses: 10,
            misses: 3,
            cold_misses: 2,
        };
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(s.replacement_misses(), 1);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn cold_vs_replacement_classification() {
        let mut c = tiny(); // 4 lines, 2-way, 2 sets
        // Touch 3 lines of set 0 (capacity 2 ways): line 4 evicts line 0.
        c.access(0);
        c.access(2 * 64);
        c.access(4 * 64);
        assert_eq!(c.stats().cold_misses, 3);
        assert_eq!(c.stats().replacement_misses(), 0);
        // Line 0 again: a replacement (non-compulsory) miss.
        assert!(!c.access(0));
        assert_eq!(c.stats().cold_misses, 3);
        assert_eq!(c.stats().replacement_misses(), 1);
    }
}
