//! # polymix-cachesim
//!
//! A trace-driven set-associative cache / TLB simulator. It substitutes
//! for the paper's hardware measurement infrastructure in two roles:
//!
//! * validating the **DL model**'s predictions (predicted distinct lines
//!   vs simulated misses across permutations and tile sizes —
//!   `dl_validation` in the bench harness), and
//! * producing **machine-model** locality numbers for the Power7-geometry
//!   runs that this reproduction cannot execute natively (see DESIGN.md).
//!
//! The simulator consumes the access stream of the AST interpreter
//! ([`polymix_ast::interp::execute_traced`]), mapping each `(array,
//! offset)` to a synthetic address space where arrays are laid out
//! back-to-back, page-aligned.

pub mod cache;
pub mod run;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use run::{batch_weighted_cost, simulate, simulate_hierarchy, HierarchyStats, Layout};
