//! Running programs through the simulator: array layout and trace
//! adapters.

use crate::cache::{Cache, CacheConfig, CacheStats};
use polymix_ast::interp::execute_traced;
use polymix_ast::tree::Program;
use polymix_ir::Scop;

/// Synthetic address-space layout: arrays placed back-to-back, each
/// aligned to a 4 KB page.
#[derive(Clone, Debug)]
pub struct Layout {
    bases: Vec<u64>,
    elem_bytes: Vec<u64>,
}

impl Layout {
    /// Lays out every array of the SCoP for the given parameters.
    pub fn new(scop: &Scop, params: &[i64]) -> Layout {
        let mut bases = Vec::new();
        let mut elem_bytes = Vec::new();
        let mut cursor: u64 = 0;
        for a in &scop.arrays {
            cursor = cursor.next_multiple_of(4096);
            bases.push(cursor);
            let eb = a.elem_bytes as u64;
            elem_bytes.push(eb);
            cursor += a.len(params).max(1) as u64 * eb;
        }
        Layout { bases, elem_bytes }
    }

    /// Byte address of `(array, element offset)`.
    pub fn addr(&self, array: usize, offset: usize) -> u64 {
        self.bases[array] + offset as u64 * self.elem_bytes[array]
    }
}

/// Executes the program through one cache and returns its statistics.
/// `arrays` must be pre-initialized storage (it is mutated by execution).
pub fn simulate(
    prog: &Program,
    params: &[i64],
    arrays: &mut [Vec<f64>],
    config: CacheConfig,
) -> CacheStats {
    let layout = Layout::new(&prog.scop, params);
    let mut cache = Cache::new(config);
    execute_traced(prog, params, arrays, |ev| {
        cache.access(layout.addr(ev.array, ev.offset));
    });
    cache.stats()
}

/// Per-level statistics of a simulated hierarchy (inclusive levels; an
/// access filters down only on a miss, the usual stacked-simulation
/// approximation).
#[derive(Clone, Debug, Default)]
pub struct HierarchyStats {
    /// One entry per configured level, outermost last.
    pub levels: Vec<CacheStats>,
}

impl HierarchyStats {
    /// Weighted miss cost: Σ misses(level) · cost(level).
    pub fn weighted_cost(&self, costs: &[f64]) -> f64 {
        self.levels
            .iter()
            .zip(costs)
            .map(|(s, c)| s.misses as f64 * c)
            .sum()
    }
}

/// Executes the program through a multi-level hierarchy: every access
/// goes to L1; only L1 misses reach L2, and so on.
pub fn simulate_hierarchy(
    prog: &Program,
    params: &[i64],
    arrays: &mut [Vec<f64>],
    configs: &[CacheConfig],
) -> HierarchyStats {
    let layout = Layout::new(&prog.scop, params);
    let mut caches: Vec<Cache> = configs.iter().map(|&c| Cache::new(c)).collect();
    execute_traced(prog, params, arrays, |ev| {
        let addr = layout.addr(ev.array, ev.offset);
        for c in caches.iter_mut() {
            if c.access(addr) {
                break; // hit at this level: done
            }
        }
    });
    HierarchyStats {
        levels: caches.iter().map(|c| c.stats()).collect(),
    }
}

/// Batch query for candidate pruning: simulates every program of a
/// search frontier through the same hierarchy at the same parameters and
/// returns each one's weighted miss cost, in input order.
///
/// Each candidate gets *fresh* storage (allocated from its own SCoP), so
/// results are order-independent — a tuner can rank or prune by these
/// costs without worrying that an earlier candidate warmed state for a
/// later one. `costs` weights the hierarchy levels exactly as
/// [`HierarchyStats::weighted_cost`].
pub fn batch_weighted_cost(
    progs: &[&Program],
    params: &[i64],
    configs: &[CacheConfig],
    costs: &[f64],
) -> Vec<f64> {
    progs
        .iter()
        .map(|prog| {
            let mut arrays = polymix_ast::interp::alloc_arrays(&prog.scop, params);
            simulate_hierarchy(prog, params, &mut arrays, configs).weighted_cost(costs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_codegen::from_poly::original_program;
    use polymix_ir::builder::{con, ix, par, ScopBuilder};
    use polymix_ir::Expr;

    /// Row-major vs column-major traversal of an N×N matrix.
    fn traversal(col_major: bool) -> (Program, Vec<i64>) {
        let mut b = ScopBuilder::new("trav", &["N"], &[64]);
        let a = b.array("A", &["N", "N"]);
        b.enter("i", con(0), par("N"));
        b.enter("j", con(0), par("N"));
        let (r, c) = if col_major {
            (ix("j"), ix("i"))
        } else {
            (ix("i"), ix("j"))
        };
        let body = Expr::add(b.rd(a, &[r.clone(), c.clone()]), Expr::Const(1.0));
        b.stmt("S", a, &[r, c], body);
        b.exit();
        b.exit();
        let scop = b.finish().expect("well-formed SCoP");
        (original_program(&scop).expect("original program"), vec![64])
    }

    #[test]
    fn row_major_beats_column_major() {
        let cfg = CacheConfig {
            line_bytes: 64,
            capacity_bytes: 4 * 1024, // too small for a 32 KB matrix
            ways: 8,
        };
        let (rp, params) = traversal(false);
        let mut arrays = polymix_ast::interp::alloc_arrays(&rp.scop, &params);
        let row = simulate(&rp, &params, &mut arrays, cfg);
        let (cp, params) = traversal(true);
        let mut arrays = polymix_ast::interp::alloc_arrays(&cp.scop, &params);
        let col = simulate(&cp, &params, &mut arrays, cfg);
        assert!(
            row.misses * 3 < col.misses,
            "row {} vs col {}",
            row.misses,
            col.misses
        );
        // Row-major: one miss per 8-element line.
        let expected = 64 * 64 / 8;
        assert_eq!(row.misses, expected);
    }

    #[test]
    fn hierarchy_filters_misses_downward() {
        let (p, params) = traversal(false);
        let mut arrays = polymix_ast::interp::alloc_arrays(&p.scop, &params);
        let h = simulate_hierarchy(
            &p,
            &params,
            &mut arrays,
            &[
                CacheConfig {
                    line_bytes: 64,
                    capacity_bytes: 1024,
                    ways: 4,
                },
                CacheConfig::l2_nehalem(),
            ],
        );
        assert_eq!(h.levels.len(), 2);
        // L2 sees exactly the L1 misses.
        assert_eq!(h.levels[1].accesses, h.levels[0].misses);
        // The 32 KB matrix fits L2: its misses are compulsory only.
        assert_eq!(h.levels[1].misses, 64 * 64 / 8);
        let cost = h.weighted_cost(&[1.0, 4.0]);
        assert!(cost > 0.0);
    }

    #[test]
    fn batch_costs_match_individual_simulation_in_order() {
        let cfgs = [
            CacheConfig {
                line_bytes: 64,
                capacity_bytes: 1024,
                ways: 4,
            },
            CacheConfig::l2_nehalem(),
        ];
        let costs = [1.0, 4.0];
        let (rp, params) = traversal(false);
        let (cp, _) = traversal(true);
        let batch = batch_weighted_cost(&[&rp, &cp, &rp], &params, &cfgs, &costs);
        assert_eq!(batch.len(), 3);
        let mut arrays = polymix_ast::interp::alloc_arrays(&rp.scop, &params);
        let solo_row = simulate_hierarchy(&rp, &params, &mut arrays, &cfgs).weighted_cost(&costs);
        assert_eq!(batch[0], solo_row, "batch must equal the solo query");
        assert_eq!(batch[2], solo_row, "fresh storage per candidate: order-independent");
        assert!(
            batch[1] > batch[0],
            "column-major must cost more: {} vs {}",
            batch[1],
            batch[0]
        );
    }

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let mut b = ScopBuilder::new("two", &["N"], &[10]);
        let _x = b.array("X", &["N"]);
        let _y = b.array("Y", &["N", "N"]);
        let scop = b.finish().expect("well-formed SCoP");
        let l = Layout::new(&scop, &[10]);
        assert_eq!(l.addr(0, 0) % 4096, 0);
        assert_eq!(l.addr(1, 0) % 4096, 0);
        assert!(l.addr(1, 0) >= l.addr(0, 9) + 8);
        assert_eq!(l.addr(1, 5) - l.addr(1, 4), 8);
    }
}
