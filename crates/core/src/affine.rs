//! The cache-aware affine transformation stage (Sec. III, Algorithms 2–5).
//!
//! Schedules are restricted to the paper's `2d+1` class with **signed
//! permutation** α rows: at each level every statement is assigned one of
//! its original iterators (possibly reversed and retimed), in the order
//! the **DL model** ranks most profitable (Sec. III-B1); SCCs are fused
//! greedily under the five conditions of Algorithm 5, with DL fusion
//! profitability (Sec. III-B2) as the cost test.
//!
//! Differences from the Pluto-like baseline (`polymix-pluto`) are exactly
//! the paper's thesis: no skewed hyperplanes ever enter the schedule
//! (skewing happens later, syntactically), and the permutation objective
//! is the DL memory cost rather than minimal reuse distance.

use polymix_deps::legality::{apply_loop_row, DepState, RowEffect};
use polymix_deps::vectors::classify;
use polymix_deps::{build_podg, sccs, DepElem, Podg};
use polymix_dl::{fusion_profitable, permutation_priority, Machine, RefInfo};
use polymix_ir::error::PolymixError;
use polymix_ir::scop::StmtId;
use polymix_ir::{Schedule, Scop};
use polymix_math::IntMat;

/// Runs Algorithms 2–5 and returns the per-statement schedules. Errors
/// with [`PolymixError::Scheduling`] when no legal signed-permutation
/// assignment exists at some level; the flow driver falls back to the
/// original schedules in that case.
pub fn affine_stage(scop: &Scop, machine: &Machine) -> Result<Vec<Schedule>, PolymixError> {
    affine_stage_with(scop, machine, true)
}

/// Like [`affine_stage`], optionally disabling inter-SCC fusion
/// (Algorithm 5 degenerates to per-SCC scheduling) — the knob behind the
/// `ablation_fusion` experiment.
pub fn affine_stage_with(
    scop: &Scop,
    machine: &Machine,
    enable_fusion: bool,
) -> Result<Vec<Schedule>, PolymixError> {
    let podg = build_podg(scop);
    // DL permutation priority per statement (original iterators,
    // outermost-profitable first).
    let priorities: Vec<Vec<usize>> = scop
        .statements
        .iter()
        .map(|st| {
            if st.dim == 0 {
                return Vec::new();
            }
            let refs: Vec<RefInfo> = st
                .accesses()
                .iter()
                .map(|(acc, _)| {
                    RefInfo::from_access(
                        acc.array.0,
                        acc,
                        &Schedule::identity(st.dim, scop.n_params()),
                        scop.n_params(),
                        st.dim,
                        scop.arrays[acc.array.0].elem_bytes,
                    )
                })
                .collect();
            permutation_priority(&refs, st.dim, machine.primary_level())
        })
        .collect();
    let mut a = Affine {
        scop,
        podg: &podg,
        machine,
        enable_fusion,
        priorities,
        states: podg
            .deps
            .iter()
            .enumerate()
            .map(|(i, d)| DepState::new(i, d))
            .collect(),
        perm: scop.statements.iter().map(|_| Vec::new()).collect(),
        signs: scop.statements.iter().map(|_| Vec::new()).collect(),
        shifts: scop.statements.iter().map(|_| Vec::new()).collect(),
        betas: scop.statements.iter().map(|_| Vec::new()).collect(),
    };
    let all: Vec<StmtId> = (0..scop.statements.len()).map(StmtId).collect();
    a.solve(&all, 0)?;
    a.finish()
}

struct Affine<'a> {
    scop: &'a Scop,
    podg: &'a Podg,
    machine: &'a Machine,
    enable_fusion: bool,
    /// DL-best iterator order per statement (outermost first).
    priorities: Vec<Vec<usize>>,
    states: Vec<DepState>,
    /// Chosen iterator per level, per statement.
    perm: Vec<Vec<usize>>,
    /// Sign (±1) per chosen level.
    signs: Vec<Vec<i64>>,
    /// Constant retiming per chosen level.
    shifts: Vec<Vec<i64>>,
    betas: Vec<Vec<i64>>,
}

/// One statement's candidate assignment at a level.
#[derive(Clone, Debug)]
struct Pick {
    iter: usize,
    sign: i64,
    shift: i64,
}

impl Affine<'_> {
    fn dim(&self, s: StmtId) -> usize {
        self.scop.statements[s.0].dim
    }

    fn exhausted(&self, s: StmtId) -> bool {
        self.perm[s.0].len() >= self.dim(s)
    }

    /// Algorithm 2's recursion over levels. Errors when some group has
    /// no legal permutation assignment at a level.
    fn solve(&mut self, stmts: &[StmtId], level: usize) -> Result<(), PolymixError> {
        let edges: Vec<(StmtId, StmtId)> = self
            .podg
            .deps
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| !st.satisfied)
            .map(|(d, _)| (d.src, d.dst))
            .filter(|(s, d)| stmts.contains(s) && stmts.contains(d))
            .collect();
        let comps = sccs(stmts, &edges);

        // Algorithm 5: pop the SCC of largest dimensionality, greedily
        // absorb every fusable SCC (conditions (1)–(5)), repeat. A merge
        // must be *path-safe*: no unfused component may sit on a
        // dependence path between the group and the candidate, or the
        // final interleaving would be cyclic.
        let reach = comp_reachability(&comps, &edges);
        let mut remaining: Vec<usize> = (0..comps.len()).collect();
        let mut merged_groups: Vec<(Vec<usize>, Vec<StmtId>)> = Vec::new();
        while !remaining.is_empty() {
            // Seed: largest statement dimensionality (ties: textual order).
            let Some(seed_pos) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| {
                    comps[c]
                        .iter()
                        .map(|&s| self.dim(s) - self.perm[s.0].len().min(self.dim(s)))
                        .max()
                        .unwrap_or(0)
                })
                .map(|(p, _)| p)
            else {
                break;
            };
            let seed = remaining.remove(seed_pos);
            let mut members = vec![seed];
            let mut group: Vec<StmtId> = comps[seed].clone();
            let seed_exhausted = group.iter().all(|&s| self.exhausted(s));
            if self.enable_fusion && !seed_exhausted {
                loop {
                    let mut changed = false;
                    let mut i = 0;
                    while i < remaining.len() {
                        let cand = remaining[i];
                        let comp = &comps[cand];
                        let others: Vec<usize> = (0..comps.len())
                            .filter(|c| !members.contains(c) && *c != cand)
                            .collect();
                        let ok = !comp.iter().all(|&s| self.exhausted(s))
                            && path_safe(&members, cand, &others, &reach)
                            && self.fusion_conditions(&group, comp, level)
                            && {
                                let mut m = group.clone();
                                m.extend(comp.iter().copied());
                                m.sort();
                                self.find_picks_top(&m, level).is_some()
                            };
                        if ok {
                            group.extend(comp.iter().copied());
                            group.sort();
                            members.push(cand);
                            remaining.remove(i);
                            changed = true;
                        } else {
                            i += 1;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            }
            merged_groups.push((members, group));
        }
        // Order the merged groups topologically (Kahn's algorithm over
        // the group-level reachability graph; ties broken by smallest
        // member component for determinism).
        let ng = merged_groups.len();
        let gedge = |a: usize, b: usize| -> bool {
            merged_groups[a]
                .0
                .iter()
                .any(|&x| merged_groups[b].0.iter().any(|&y| reach[x][y]))
        };
        let mut order: Vec<usize> = Vec::with_capacity(ng);
        let mut placed = vec![false; ng];
        while order.len() < ng {
            let Some(next) = (0..ng)
                .filter(|&g| !placed[g])
                .filter(|&g| {
                    (0..ng).all(|h| placed[h] || h == g || !gedge(h, g))
                })
                .min_by_key(|&g| merged_groups[g].0.iter().min().copied())
            else {
                // A cycle here would mean path_safe was violated.
                return Err(PolymixError::scheduling(
                    &self.scop.name,
                    level,
                    stmts.iter().map(|s| s.0).collect(),
                    "cyclic group graph while ordering fused groups",
                ));
            };
            placed[next] = true;
            order.push(next);
        }
        let mut by_order: Vec<Vec<StmtId>> = Vec::with_capacity(ng);
        for &g in &order {
            by_order.push(merged_groups[g].1.clone());
        }
        let groups = by_order;

        // Compute every group's picks against the pre-β dependence
        // states, then run a *global alignment* pass: cross-group
        // dependences at this level are already ordered by β, but a
        // negative constant distance would block later joint tiling —
        // retime whole groups forward (pure renumbering of distributed
        // loops, always legal across groups).
        let pre_beta = self.states.clone();
        let mut planned: Vec<(Vec<StmtId>, Option<Vec<Pick>>)> = Vec::new();
        for group in &groups {
            let picks = if group.iter().all(|&s| self.exhausted(s)) {
                None
            } else {
                match self.find_picks(group, level) {
                    Some(p) => Some(p),
                    None => {
                        return Err(PolymixError::scheduling(
                            &self.scop.name,
                            level,
                            group.iter().map(|s| s.0).collect(),
                            "no legal signed-permutation assignment",
                        ));
                    }
                }
            };
            planned.push((group.clone(), picks));
        }
        'align: for _ in 0..8 {
            for (d, st) in self.podg.deps.iter().zip(&pre_beta) {
                if st.satisfied {
                    continue;
                }
                let src_g = planned.iter().position(|(g, _)| g.contains(&d.src));
                let dst_g = planned.iter().position(|(g, _)| g.contains(&d.dst));
                let (Some(sg), Some(dg)) = (src_g, dst_g) else {
                    continue;
                };
                if sg == dg {
                    continue;
                }
                let (Some(sp), Some(dp)) = (&planned[sg].1, &planned[dg].1) else {
                    continue;
                };
                let (Some(si), Some(di)) = (
                    planned[sg].0.iter().position(|&s| s == d.src),
                    planned[dg].0.iter().position(|&s| s == d.dst),
                ) else {
                    continue;
                };
                let row_src = self.pick_row(d.src, &sp[si]);
                let row_dst = self.pick_row(d.dst, &dp[di]);
                let diff = d.diff_row(&row_src, &row_dst);
                if let DepElem::Const(c) =
                    classify(&st.remaining, &diff, &self.scop.default_params)
                {
                    if c < 0 {
                        if let Some(dps) = planned[dg].1.as_mut() {
                            for p in dps.iter_mut() {
                                p.shift += -c;
                            }
                        }
                        continue 'align;
                    }
                }
            }
            break;
        }
        for (pos, (group, picks)) in planned.into_iter().enumerate() {
            for &s in &group {
                self.betas[s.0].push(pos as i64);
            }
            self.apply_beta_effects(stmts, &group);
            let Some(picks) = picks else {
                continue;
            };
            for (&s, p) in group.iter().zip(&picks) {
                self.perm[s.0].push(p.iter);
                self.signs[s.0].push(p.sign);
                self.shifts[s.0].push(p.shift);
            }
            self.commit(&group, &picks);
            self.solve(&group, level + 1)?;
        }
        Ok(())
    }

    /// Algorithm 5's fusion conditions (1), (2), (3) and (5); condition
    /// (4) — a legal reversal/retiming combination exists — is checked by
    /// the caller through `find_picks` on the merged group.
    fn fusion_conditions(&self, a: &[StmtId], b: &[StmtId], level: usize) -> bool {
        // (1) direct predecessor/successor or no dependences at all.
        //     (The SCC topological order already guarantees b never
        //     precedes a; any edge between them makes them adjacent.)
        // (2) + (3): profitability — a shared array accessed by both and
        //     the DL fusion-cost test.
        let shared = self.shares_array(a, b);
        if !shared {
            // Paper condition (1) also allows fusing independent groups
            // ("no dependences except input"); but without shared data
            // condition (2)'s profitability fails, so reject.
            return false;
        }
        // (2) constant reuse distance: some shared array must be accessed
        //     with the same iterator column under the groups' chosen
        //     (top-priority) iterators at this level.
        if !self.aligned_shared_access(a, b) {
            return false;
        }
        let refs_a = self.group_refs(a);
        let refs_b = self.group_refs(b);
        let da = a.iter().map(|&s| self.dim(s)).max().unwrap_or(0);
        let db = b.iter().map(|&s| self.dim(s)).max().unwrap_or(0);
        if !fusion_profitable(&refs_a, da, &refs_b, db, self.machine.fusion_level()) {
            return false;
        }
        // (5) fusion must not kill outermost parallelism: if both groups
        //     are doall at this level, the merged one must be too.
        let doall = |g: &[StmtId]| self.group_is_doall(g, level);
        if doall(a) && doall(b) && !self.merged_is_doall(a, b, level) {
            return false;
        }
        true
    }

    /// Condition (2): a shared array whose access matrices have equal
    /// columns for the two groups' next (top-DL-priority) iterators —
    /// i.e. the reuse distance between the accesses is constant along the
    /// would-be fused loop.
    fn aligned_shared_access(&self, a: &[StmtId], b: &[StmtId]) -> bool {
        let next_iter = |s: StmtId| -> Option<usize> {
            self.priorities[s.0]
                .iter()
                .copied()
                .find(|it| !self.perm[s.0].contains(it))
        };
        for &sa in a {
            let Some(ia) = next_iter(sa) else { continue };
            for (acc_a, _) in self.scop.statements[sa.0].accesses() {
                let col_a: Vec<i64> = acc_a.map.iter().map(|r| r[ia]).collect();
                for &sb in b {
                    let Some(ib) = next_iter(sb) else { continue };
                    for (acc_b, _) in self.scop.statements[sb.0].accesses() {
                        if acc_b.array != acc_a.array {
                            continue;
                        }
                        let col_b: Vec<i64> = acc_b.map.iter().map(|r| r[ib]).collect();
                        if col_a == col_b && col_a.iter().any(|&c| c != 0) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn shares_array(&self, a: &[StmtId], b: &[StmtId]) -> bool {
        let arrays = |list: &[StmtId]| -> Vec<usize> {
            let mut out = Vec::new();
            for &s in list {
                for (acc, _) in self.scop.statements[s.0].accesses() {
                    if !out.contains(&acc.array.0) {
                        out.push(acc.array.0);
                    }
                }
            }
            out
        };
        let aa = arrays(a);
        arrays(b).iter().any(|x| aa.contains(x))
    }

    fn group_refs(&self, g: &[StmtId]) -> Vec<RefInfo> {
        let depth = g.iter().map(|&s| self.dim(s)).max().unwrap_or(0);
        let mut out = Vec::new();
        for &s in g {
            let st = &self.scop.statements[s.0];
            for (acc, _) in st.accesses() {
                out.push(RefInfo::from_access(
                    acc.array.0,
                    &acc,
                    &Schedule::identity(st.dim, self.scop.n_params()),
                    self.scop.n_params(),
                    depth,
                    self.scop.arrays[acc.array.0].elem_bytes,
                ));
            }
        }
        out
    }

    /// True when no unsatisfied internal dependence of the group is
    /// carried by any legal level-`level` row (approximated: by the
    /// group's first legal pick).
    fn group_is_doall(&self, g: &[StmtId], level: usize) -> bool {
        let Some(picks) = self.find_picks(g, level) else {
            return false;
        };
        self.picks_are_doall(g, &picks)
    }

    fn merged_is_doall(&self, a: &[StmtId], b: &[StmtId], level: usize) -> bool {
        let mut merged = a.to_vec();
        merged.extend(b.iter().copied());
        let Some(picks) = self.find_picks(&merged, level) else {
            return false;
        };
        self.picks_are_doall(&merged, &picks)
    }

    fn picks_are_doall(&self, g: &[StmtId], picks: &[Pick]) -> bool {
        for (d, st) in self.podg.deps.iter().zip(&self.states) {
            if st.satisfied || d.is_reduction {
                continue;
            }
            let (Some(si), Some(di)) = (
                g.iter().position(|&s| s == d.src),
                g.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let row_src = self.pick_row(d.src, &picks[si]);
            let row_dst = self.pick_row(d.dst, &picks[di]);
            let diff = d.diff_row(&row_src, &row_dst);
            if classify(&st.remaining, &diff, &self.scop.default_params) != DepElem::Const(0) {
                return false;
            }
        }
        true
    }

    /// Fusion probe: only the all-top-DL-priority combination is tried —
    /// fusion must not derail the DL permutation choice (it would trade
    /// the very locality the model asked for).
    fn find_picks_top(&self, group: &[StmtId], level: usize) -> Option<Vec<Pick>> {
        let _ = level;
        let iters: Option<Vec<usize>> = group
            .iter()
            .map(|&s| {
                self.priorities[s.0]
                    .iter()
                    .copied()
                    .find(|it| !self.perm[s.0].contains(it))
            })
            .collect();
        let iters = iters?;
        for sign in [1i64, -1] {
            let picks: Vec<Pick> = iters
                .iter()
                .map(|&it| Pick {
                    iter: it,
                    sign,
                    shift: 0,
                })
                .collect();
            if let Some(legalized) = self.legalize(group, picks) {
                return Some(legalized);
            }
        }
        None
    }

    /// Algorithm 4: search permutation combinations in DL-priority order,
    /// legalizing with retiming and reversal.
    fn find_picks(&self, group: &[StmtId], level: usize) -> Option<Vec<Pick>> {
        let _ = level;
        // Remaining iterators per statement, in DL priority order.
        let cands: Vec<Vec<usize>> = group
            .iter()
            .map(|&s| {
                self.priorities[s.0]
                    .iter()
                    .copied()
                    .filter(|it| !self.perm[s.0].contains(it))
                    .collect::<Vec<usize>>()
            })
            .collect();
        if cands.iter().any(|c| c.is_empty()) {
            return None;
        }
        let mut idx = vec![0usize; group.len()];
        let mut explored = 0usize;
        loop {
            explored += 1;
            if explored > 20_000 {
                return None;
            }
            let iters: Vec<usize> = idx.iter().enumerate().map(|(g, &i)| cands[g][i]).collect();
            // Try plain, then retimed, then reversed(+retimed).
            for sign in [1i64, -1] {
                let picks: Vec<Pick> = group
                    .iter()
                    .zip(&iters)
                    .map(|(_, &it)| Pick {
                        iter: it,
                        sign,
                        shift: 0,
                    })
                    .collect();
                if let Some(legalized) = self.legalize(group, picks) {
                    return Some(legalized);
                }
            }
            // Odometer (ordered so low-priority-index combos come first).
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return None;
                }
                idx[k] += 1;
                if idx[k] < cands[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    /// Retiming legalization: while some dependence is violated with a
    /// constant negative distance, shift the destination statement
    /// forward. Bounded; returns the legal picks or `None`.
    fn legalize(&self, group: &[StmtId], mut picks: Vec<Pick>) -> Option<Vec<Pick>> {
        for _round in 0..6 {
            let mut violated = false;
            for (d, st) in self.podg.deps.iter().zip(&self.states) {
                if st.satisfied {
                    continue;
                }
                let (Some(si), Some(di)) = (
                    group.iter().position(|&s| s == d.src),
                    group.iter().position(|&s| s == d.dst),
                ) else {
                    continue;
                };
                let row_src = self.pick_row(d.src, &picks[si]);
                let row_dst = self.pick_row(d.dst, &picks[di]);
                let mut probe = st.clone();
                if apply_loop_row(d, &mut probe, &row_src, &row_dst) == RowEffect::Violated {
                    violated = true;
                    if si == di {
                        return None; // self-dep: retiming can't fix
                    }
                    // Shift destination forward by the worst violation.
                    let diff = d.diff_row(&row_src, &row_dst);
                    match classify(&st.remaining, &diff, &self.scop.default_params) {
                        DepElem::Const(c) if c < 0 => picks[di].shift += -c,
                        DepElem::NonPos | DepElem::Minus | DepElem::Star | DepElem::NonNeg => {
                            return None; // non-constant violation
                        }
                        _ => return None,
                    }
                }
            }
            if !violated {
                // Alignment pass (multidimensional retiming, the paper's
                // c-coefficients): inter-statement dependences that are
                // legal only thanks to β ordering but have *negative*
                // constant distance at this row block later tiling — shift
                // the destination forward to realign.
                'align: for _ in 0..6 {
                    for (d, st) in self.podg.deps.iter().zip(&self.states) {
                        if st.satisfied {
                            continue;
                        }
                        let (Some(si), Some(di)) = (
                            group.iter().position(|&s| s == d.src),
                            group.iter().position(|&s| s == d.dst),
                        ) else {
                            continue;
                        };
                        if si == di {
                            continue;
                        }
                        let row_src = self.pick_row(d.src, &picks[si]);
                        let row_dst = self.pick_row(d.dst, &picks[di]);
                        let diff = d.diff_row(&row_src, &row_dst);
                        if let DepElem::Const(c) =
                            classify(&st.remaining, &diff, &self.scop.default_params)
                        {
                            if c < 0 {
                                let mut trial = picks.clone();
                                trial[di].shift += -c;
                                // The shift must not break any other dep.
                                if self.all_legal(group, &trial) {
                                    picks = trial;
                                    continue 'align;
                                }
                            }
                        }
                    }
                    break;
                }
                return Some(picks);
            }
        }
        None
    }

    fn all_legal(&self, group: &[StmtId], picks: &[Pick]) -> bool {
        for (d, st) in self.podg.deps.iter().zip(&self.states) {
            if st.satisfied {
                continue;
            }
            let (Some(si), Some(di)) = (
                group.iter().position(|&s| s == d.src),
                group.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let row_src = self.pick_row(d.src, &picks[si]);
            let row_dst = self.pick_row(d.dst, &picks[di]);
            let mut probe = st.clone();
            if apply_loop_row(d, &mut probe, &row_src, &row_dst) == RowEffect::Violated {
                return false;
            }
        }
        true
    }

    fn pick_row(&self, s: StmtId, p: &Pick) -> Vec<i64> {
        let d = self.dim(s);
        let np = self.scop.n_params();
        let mut row = vec![0i64; d + np + 1];
        row[p.iter] = p.sign;
        row[d + np] = p.shift;
        row
    }

    fn commit(&mut self, group: &[StmtId], picks: &[Pick]) {
        for (di, d) in self.podg.deps.iter().enumerate() {
            if self.states[di].satisfied {
                continue;
            }
            let (Some(si), Some(ti)) = (
                group.iter().position(|&s| s == d.src),
                group.iter().position(|&s| s == d.dst),
            ) else {
                continue;
            };
            let row_src = self.pick_row(d.src, &picks[si]);
            let row_dst = self.pick_row(d.dst, &picks[ti]);
            let eff = apply_loop_row(d, &mut self.states[di], &row_src, &row_dst);
            debug_assert_ne!(eff, RowEffect::Violated, "committing illegal pick");
        }
    }

    fn apply_beta_effects(&mut self, all: &[StmtId], group: &[StmtId]) {
        for (d, st) in self.podg.deps.iter().zip(self.states.iter_mut()) {
            if st.satisfied {
                continue;
            }
            if group.contains(&d.src) && !group.contains(&d.dst) && all.contains(&d.dst) {
                st.satisfied = true;
            }
        }
    }

    fn finish(self) -> Result<Vec<Schedule>, PolymixError> {
        let np = self.scop.n_params();
        let mut out = Vec::new();
        for (i, stmt) in self.scop.statements.iter().enumerate() {
            let d = stmt.dim;
            let mut perm = self.perm[i].clone();
            let mut signs = self.signs[i].clone();
            let mut shifts = self.shifts[i].clone();
            let mut betas = self.betas[i].clone();
            while perm.len() < d {
                let Some(free) = (0..d).find(|k| !perm.contains(k)) else {
                    return Err(PolymixError::scheduling(
                        &self.scop.name,
                        perm.len(),
                        vec![i],
                        "permutation completion found no free iterator",
                    ));
                };
                perm.push(free);
                signs.push(1);
                shifts.push(0);
                betas.push(0);
            }
            let mut alpha = IntMat::zeros(d, d);
            let mut gamma = vec![vec![0i64; np + 1]; d];
            for (k, (&it, (&sg, &sh))) in
                perm.iter().zip(signs.iter().zip(&shifts)).enumerate()
            {
                alpha[(k, it)] = sg;
                gamma[k][np] = sh;
            }
            let mut beta = betas;
            beta.truncate(d + 1);
            while beta.len() < d + 1 {
                beta.push(0);
            }
            let sched = Schedule { beta, alpha, gamma };
            sched.check().map_err(|msg| {
                PolymixError::scheduling(&self.scop.name, 0, vec![i], msg)
            })?;
            if !(sched.is_signed_permutation() || d == 0) {
                return Err(PolymixError::scheduling(
                    &self.scop.name,
                    0,
                    vec![i],
                    "affine stage produced non-permutation α",
                ));
            }
            out.push(sched);
        }
        Ok(out)
    }
}

/// Transitive reachability between SCC components via the dependence
/// edges (component indices).
fn comp_reachability(comps: &[Vec<StmtId>], edges: &[(StmtId, StmtId)]) -> Vec<Vec<bool>> {
    let n = comps.len();
    let comp_of = |s: StmtId| comps.iter().position(|c| c.contains(&s));
    let mut r = vec![vec![false; n]; n];
    for &(a, b) in edges {
        if let (Some(ca), Some(cb)) = (comp_of(a), comp_of(b)) {
            if ca != cb {
                r[ca][cb] = true;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            if r[i][k] {
                for j in 0..n {
                    if r[k][j] {
                        r[i][j] = true;
                    }
                }
            }
        }
    }
    r
}

/// A merge of component `cand` into the group with `members` is path-safe
/// when no component outside the group lies on a dependence path between
/// them (in either direction).
fn path_safe(
    members: &[usize],
    cand: usize,
    others: &[usize],
    reach: &[Vec<bool>],
) -> bool {
    for &x in others {
        if x == cand {
            continue;
        }
        let g_to_x = members.iter().any(|&m| reach[m][x]);
        let x_to_c = reach[x][cand];
        let c_to_x = reach[cand][x];
        let x_to_g = members.iter().any(|&m| reach[x][m]);
        if (g_to_x && x_to_c) || (c_to_x && x_to_g) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_deps::legality::schedules_legal_for_dep;
    use polymix_polybench::{all_kernels, kernel_by_name};

    #[test]
    fn affine_stage_is_legal_on_all_kernels() {
        let machine = Machine::nehalem();
        for k in all_kernels() {
            let scop = (k.build)();
            let schedules = affine_stage(&scop, &machine).expect("affine stage");
            let podg = build_podg(&scop);
            for d in &podg.deps {
                assert!(
                    schedules_legal_for_dep(d, &schedules[d.src.0], &schedules[d.dst.0]),
                    "illegal schedule for {} dep {:?}->{:?}",
                    k.name,
                    d.src,
                    d.dst
                );
            }
            for s in &schedules {
                assert!(s.is_signed_permutation() || s.dim() == 0);
            }
        }
    }

    #[test]
    fn gemm_gets_ikj_or_ijk_with_j_inner_for_s2() {
        // The DL model wants the stride-1 iterator (j) innermost for the
        // matmul update.
        let k = kernel_by_name("gemm").unwrap();
        let scop = (k.build)();
        let schedules = affine_stage(&scop, &Machine::nehalem()).expect("affine stage");
        let s2 = &schedules[1]; // (i, j, k) original
        // Innermost row must select j (index 1).
        let last = s2.alpha.row(2);
        assert_eq!(last, &[0, 1, 0], "S2 alpha: {:?}", s2.alpha);
    }

    #[test]
    fn two_mm_fuses_at_outer_level() {
        // Our flow (Fig. 3) fuses all four statements under one outer
        // loop (shared i).
        let k = kernel_by_name("2mm").unwrap();
        let scop = (k.build)();
        let schedules = affine_stage(&scop, &Machine::nehalem()).expect("affine stage");
        let b0: Vec<i64> = schedules.iter().map(|s| s.beta[0]).collect();
        assert!(b0.iter().all(|&b| b == b0[0]), "betas {b0:?}");
        // And all α stay signed permutations — no Fig. 2 style skew.
        for s in &schedules {
            assert!(s.is_signed_permutation());
        }
    }
}
