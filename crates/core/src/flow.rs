//! The end-to-end poly+AST flow (Algorithm 1).

use crate::affine::affine_stage_with;
use polymix_ast::tree::{Node, Program};
use polymix_codegen::from_poly::generate;
use polymix_codegen::opt::{
    mark_parallelism, nest_infos, register_tile, skew_nest_for_tilability, tile_nest,
};
use polymix_deps::build_podg;
use polymix_dl::Machine;
use polymix_ir::error::PolymixError;
use polymix_ir::{Schedule, Scop};

/// Options for the poly+AST optimizer.
#[derive(Clone, Debug)]
pub struct PolyAstOptions {
    /// Target machine description (drives the DL model and core counts).
    pub machine: Machine,
    /// Rectangular tile size (paper: 32).
    pub tile: i64,
    /// Tile size of the outermost band level when it is a time loop
    /// (paper: 5 for the pipeline group; the harness sets this per
    /// kernel group).
    pub time_tile: i64,
    /// Enable the tiling stage.
    pub tiling: bool,
    /// Enable the parallelization stage.
    pub parallelize: bool,
    /// Restrict the parallelism detector to doall (Fig. 5's comparison
    /// mode: forgo reduction/pipeline parallelism).
    pub doall_only: bool,
    /// Register tiling (unroll-and-jam) factors `(outer, inner)`.
    pub unroll: (i64, i64),
    /// Enable Algorithm 5's inter-SCC fusion (the `ablation_fusion`
    /// experiment turns this off).
    pub fusion: bool,
}

impl Default for PolyAstOptions {
    fn default() -> Self {
        PolyAstOptions {
            machine: Machine::host(),
            tile: 32,
            time_tile: 32,
            tiling: true,
            parallelize: true,
            doall_only: false,
            unroll: (1, 1),
            fusion: true,
        }
    }
}

/// Runs Algorithm 1: the DL-guided affine stage, then the AST stages
/// (skewing for tilability → parallelization → tiling → intra-tile).
///
/// Degrades gracefully: if the affine stage (or code generation on its
/// schedules) fails, the statements' original schedules — the
/// untransformed loop order, always legal — are used instead, and the
/// AST stages run on that tree. The later AST stages are themselves
/// best-effort (a failed transform keeps the last legal tree), so an
/// `Err` here means even the identity program could not be generated.
pub fn optimize_poly_ast(scop: &Scop, opts: &PolyAstOptions) -> Result<Program, PolymixError> {
    // Stage 1: fusion & permutation with DL (polyhedral).
    let staged = affine_stage_with(scop, &opts.machine, opts.fusion)
        .and_then(|s| generate(scop, &s).map(|p| (s, p)));
    let (schedules, mut prog) = match staged {
        Ok(sp) => sp,
        Err(_) => {
            // Fallback rung: original textual-order schedules.
            let identity: Vec<Schedule> =
                scop.statements.iter().map(|s| s.schedule.clone()).collect();
            let p = generate(scop, &identity)?;
            (identity, p)
        }
    };
    let podg = build_podg(scop);
    let infos = nest_infos(scop, &schedules, &podg, &prog);

    let tops: Vec<Node> = match std::mem::replace(&mut prog.body, Node::Seq(vec![])) {
        Node::Seq(xs) => xs,
        other => vec![other],
    };
    if tops.len() != infos.len() {
        return Err(PolymixError::codegen(
            &scop.name,
            format!(
                "top-level nest count {} does not match dependence info count {}",
                tops.len(),
                infos.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(tops.len());
    for (mut nest, info) in tops.into_iter().zip(&infos) {
        // Stage 2: skewing for tilability (AST-level). A failed attempt
        // may leave partial skews behind, so work on a clone.
        let mut skewed = nest.clone();
        let vectors = match skew_nest_for_tilability(
            &mut skewed,
            scop,
            &schedules,
            &podg,
            &info.stmts,
            info.depth,
        ) {
            Some(v) => {
                nest = skewed;
                v
            }
            None => info.vectors.clone(),
        };
        // Stage 3: coarse-grain parallelization (doall / reduction /
        // pipeline at the outermost possible level).
        if opts.parallelize {
            mark_parallelism(&mut nest, &vectors, info.depth, opts.doall_only);
        }
        // Stage 4: tiling for locality.
        if opts.tiling {
            nest = tile_nest(
                &mut prog,
                nest,
                &vectors,
                &info.endpoints,
                info.depth,
                opts.tile,
                opts.time_tile,
            );
        }
        // Stage 5: intra-tile optimizations (register tiling).
        if opts.unroll.0 > 1 || opts.unroll.1 > 1 {
            register_tile(&mut nest, opts.unroll.0, opts.unroll.1, &vectors, &info.endpoints);
        }
        out.push(nest);
    }
    prog.body = match out.len() {
        1 => out.remove(0),
        _ => Node::Seq(out),
    };
    // Mandatory debug-mode certification: re-derive the dependence
    // relation from the final transformed program and prove schedule
    // legality plus annotation safety, independently of the incremental
    // bookkeeping the stages above used.
    #[cfg(debug_assertions)]
    polymix_verify::certify(&prog)?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymix_ast::interp::execute;
    use polymix_ast::tree::Par;
    use polymix_polybench::{all_kernels, kernel_by_name};

    fn opts_small() -> PolyAstOptions {
        PolyAstOptions {
            tile: 4,
            time_tile: 2,
            ..Default::default()
        }
    }

    /// The central oracle: poly+AST output must match the reference
    /// bit-for-bit on every kernel (sequential interpretation).
    #[test]
    fn poly_ast_preserves_semantics_on_all_kernels() {
        for k in all_kernels() {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut expected = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut expected);

            let prog = optimize_poly_ast(&scop, &opts_small()).expect("optimize");
            let mut actual = k.fresh_arrays(&scop, &params);
            execute(&prog, &params, &mut actual);
            for (ai, (e, a)) in expected.iter().zip(&actual).enumerate() {
                assert_eq!(
                    e, a,
                    "{} array {} ({}) mismatch",
                    k.name, ai, scop.arrays[ai].name
                );
            }
        }
    }

    #[test]
    fn variants_without_stages_also_preserve_semantics() {
        let variants = [
            PolyAstOptions {
                tiling: false,
                ..opts_small()
            },
            PolyAstOptions {
                parallelize: false,
                ..opts_small()
            },
            PolyAstOptions {
                doall_only: true,
                ..opts_small()
            },
            PolyAstOptions {
                unroll: (2, 2),
                ..opts_small()
            },
        ];
        for k in all_kernels() {
            let scop = (k.build)();
            let params = k.dataset("mini").params;
            let mut expected = k.fresh_arrays(&scop, &params);
            (k.reference)(&params, &mut expected);
            for (vi, opts) in variants.iter().enumerate() {
                let prog = optimize_poly_ast(&scop, opts).expect("optimize");
                let mut actual = k.fresh_arrays(&scop, &params);
                execute(&prog, &params, &mut actual);
                for (ai, (e, a)) in expected.iter().zip(&actual).enumerate() {
                    assert_eq!(e, a, "{} variant {vi} array {ai} mismatch", k.name);
                }
            }
        }
    }

    #[test]
    fn stencils_get_pipeline_parallelism() {
        for name in ["seidel-2d", "jacobi-2d-imper", "fdtd-2d"] {
            let k = kernel_by_name(name).unwrap();
            let scop = (k.build)();
            let prog = optimize_poly_ast(&scop, &opts_small()).expect("optimize");
            let mut found = false;
            let mut body = prog.body.clone();
            body.visit_loops_mut(&mut |l| {
                if l.par == Par::Pipeline {
                    found = true;
                }
            });
            assert!(found, "{name}: no pipeline parallelism found");
        }
    }

    #[test]
    fn doall_kernels_get_outer_doall() {
        for name in ["gemm", "2mm", "3mm", "doitgen", "syrk"] {
            let k = kernel_by_name(name).unwrap();
            let scop = (k.build)();
            let prog = optimize_poly_ast(&scop, &opts_small()).expect("optimize");
            let mut found = false;
            let mut body = prog.body.clone();
            body.visit_loops_mut(&mut |l| {
                if l.par == Par::Doall {
                    found = true;
                }
            });
            assert!(found, "{name}: no doall parallelism found");
        }
    }

    #[test]
    fn reduction_kernels_get_reduction_parallelism() {
        // atax's y accumulation and bicg's s accumulation are carried by
        // the outer i loop via reduction dependences only.
        for name in ["atax", "bicg"] {
            let k = kernel_by_name(name).unwrap();
            let scop = (k.build)();
            let prog = optimize_poly_ast(&scop, &opts_small()).expect("optimize");
            let mut kinds = Vec::new();
            let mut body = prog.body.clone();
            body.visit_loops_mut(&mut |l| kinds.push(l.par));
            assert!(
                kinds
                    .iter()
                    .any(|&p| p == Par::Reduction || p == Par::Doall),
                "{name}: kinds {kinds:?}"
            );
        }
    }
}
