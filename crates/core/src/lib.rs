//! # polymix-core
//!
//! The paper's primary contribution: the **poly+AST** optimization flow
//! (Algorithm 1), combining a DL-guided polyhedral stage with syntactic
//! AST transformations:
//!
//! ```text
//! P := fusion_and_permutation_with_DL(P.Poly);     // Algorithms 2–5
//! P := skewing_for_tilability(P.AST);              // Sec. IV-B
//! P := coarse_grain_parallelization(P.AST);        // Sec. IV-A
//! P := tiling_for_locality(P.AST);                 // Sec. IV-B
//! P := intra_tile_optimizations(P.AST);            // Sec. IV-C
//! ```
//!
//! * [`affine`] implements the cache-aware affine stage: schedules are
//!   restricted to fusion / distribution / code motion (β), signed
//!   permutation (α) and retiming (γ); permutations follow the DL model's
//!   priority order, fusion follows the five conditions of Algorithm 5.
//! * [`flow`] assembles the end-to-end pipeline on the generated AST,
//!   reusing the shared post passes of `polymix-codegen::opt`.

pub mod affine;
pub mod flow;

/// The pipeline-wide error model (defined in `polymix-ir` so every layer
/// below the flow can name it; re-exported here as the canonical path).
pub mod error {
    pub use polymix_ir::error::{PolymixError, Result, Stage};
}

pub use affine::{affine_stage, affine_stage_with};
pub use error::{PolymixError, Stage};
pub use flow::{optimize_poly_ast, PolyAstOptions};
